//! The work-sharing thread pool behind [`crate::Executor`].
//!
//! Deliberately minimal: one global FIFO injector guarded by a mutex, a
//! condvar to park idle workers, and per-batch completion latches. No
//! work-stealing deques, no registry crates — the workloads this pool
//! serves (frontier rounds, recursive hopset calls, chunked sorts) push
//! coarse chunk-sized jobs, so a shared queue is not a bottleneck.
//!
//! # Blocking and nesting
//!
//! A thread waiting on a batch (the caller of [`crate::Executor::scope`],
//! or a pool worker running a job that opened a nested scope) does not
//! sleep idly: it *helps*, draining jobs from the injector until its own
//! batch completes. This makes nested parallelism (the hopset recursion
//! spawning clusterings that spawn frontier rounds) deadlock-free with any
//! pool size: every blocked thread is also a consumer of the queue.
//!
//! # Memory ordering
//!
//! Each job's completion decrements the batch latch with `Release`; the
//! waiter observes zero with `Acquire`. Atomic read-modify-writes form a
//! release sequence, so the waiter synchronizes-with *every* completed
//! job, not just the last one — everything a job wrote (including
//! `Relaxed` counter bumps, see `psh_pram::OpCounter`) is visible after
//! the scope returns. Panics inside jobs are caught, the first payload is
//! stored, and the panic resumes on the scope caller after all jobs of
//! the batch have finished.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool's workers and scope callers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on every push *and* every batch-job completion, so both
    /// idle workers and batch waiters wake promptly.
    work: Condvar,
}

impl Shared {
    fn push(&self, job: Job) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(job);
        self.work.notify_all();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// Completion latch for one `scope` invocation.
pub(crate) struct Batch {
    shared: Arc<Shared>,
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            // Lock/unlock pairs the notification with a waiter that is
            // between its latch check and its condvar wait.
            drop(self.shared.queue.lock().unwrap());
            self.shared.work.notify_all();
        }
    }
}

/// A persistent set of worker threads. Pools live for the whole process
/// (see the registry in `lib.rs`); workers park on the condvar when idle.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    pub(crate) threads: usize,
}

impl Pool {
    /// Spawn a pool that, together with the scope caller, keeps `threads`
    /// threads busy: `threads - 1` workers are created.
    pub(crate) fn new(threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        });
        for i in 0..threads.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("psh-exec-{i}"))
                .spawn(move || worker(&shared))
                .expect("failed to spawn psh-exec worker");
        }
        Pool { shared, threads }
    }

    /// Help-then-wait until `batch` has no outstanding jobs.
    fn wait(&self, batch: &Batch) {
        loop {
            if batch.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            let q = self.shared.queue.lock().unwrap();
            if batch.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            if !q.is_empty() {
                continue; // a job arrived between try_pop and the lock
            }
            // Parked until a push or a completion notifies; the guard is
            // dropped immediately so helpers can pop.
            drop(self.shared.work.wait(q).unwrap());
        }
    }
}

fn worker(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        // Jobs are panic-wrapped at spawn time, so `job()` never unwinds.
        job();
    }
}

/// Spawn handle passed to the closure of [`crate::Executor::scope`].
///
/// Tasks spawned here run on the pool (or inline under the sequential
/// policy) and are all complete by the time `scope` returns. Borrowing
/// data from the enclosing frame is allowed: the scope cannot be exited —
/// not even by panic — before every spawned task has finished.
pub struct Scope<'scope, 'pool> {
    pool: Option<&'pool Pool>,
    batch: Arc<Batch>,
    /// Invariant in `'scope`, like `std::thread::Scope`.
    _marker: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'scope> Scope<'scope, '_> {
    /// Run `f` as a pool task (or inline when sequential).
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        let Some(pool) = self.pool else {
            f();
            return;
        };
        self.batch.remaining.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::clone(&self.batch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                batch.panic.lock().unwrap().get_or_insert(payload);
            }
            batch.complete_one();
        });
        // SAFETY: the job is erased to 'static so it can sit in the shared
        // queue, but `run_scope` (via `WaitGuard`, which waits even on
        // panic) guarantees the batch drains before the 'scope frame is
        // left, so every borrow the job holds outlives its execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        pool.shared.push(job);
    }
}

/// Drains the batch even when the scope body panics, keeping borrowed
/// frames alive until every spawned job has run.
struct WaitGuard<'pool> {
    pool: Option<&'pool Pool>,
    batch: Arc<Batch>,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            pool.wait(&self.batch);
        }
    }
}

/// The `scope` entry point shared by the sequential and pooled executors.
pub(crate) fn run_scope<'scope, R>(
    pool: Option<&Pool>,
    f: impl FnOnce(&Scope<'scope, '_>) -> R,
) -> R {
    let shared = pool.map(|p| Arc::clone(&p.shared)).unwrap_or_else(|| {
        // Sequential: a throwaway latch that never sees a job.
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        })
    });
    let batch = Arc::new(Batch {
        shared,
        remaining: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let scope = Scope {
        pool,
        batch: Arc::clone(&batch),
        _marker: PhantomData,
    };
    let result = {
        let _guard = WaitGuard {
            pool,
            batch: Arc::clone(&batch),
        };
        f(&scope)
        // _guard drops here: waits for all spawned jobs, panic or not.
    };
    if let Some(payload) = batch.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    result
}
