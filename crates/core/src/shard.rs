//! Sharded oracles: partition by clustering, stitch by boundary overlay.
//!
//! The low-diameter decomposition of Algorithm 1 is itself a graph
//! partitioner, and this module exploits that to serve graphs too big
//! for one oracle:
//!
//! 1. [`ShardPlan::compute`] clusters the graph (exponential start
//!    times), groups clusters onto `k` shards with a balanced greedy
//!    (LPT) pass, and extracts the **boundary**: every endpoint of a cut
//!    edge.
//! 2. [`ShardedOracleBuilder`] builds one [`ApproxShortestPaths`] per
//!    shard **in parallel on the psh-exec pool**, plus an *overlay*
//!    oracle on the boundary graph: vertices are the boundary vertices,
//!    edges are the cut edges (original weight) together with one
//!    per-shard *clique* edge for every boundary pair, weighted by the
//!    exact intra-shard Dijkstra distance.
//! 3. [`ShardedOracle::query`] composes `s`–`t` answers: a same-shard
//!    pair is answered by its shard oracle *and* by boundary
//!    composition (the true path may leave the shard), a cross-shard
//!    pair by `min` over boundary candidates `a` (in `s`'s shard) and
//!    `b` (in `t`'s shard) of `loc(s,a) + overlay(a,b) + loc(b,t)`.
//!
//! ## Stretch bound
//!
//! For boundary vertices `a, b` the overlay preserves distances exactly:
//! `d_ov(a,b) = d_G(a,b)`. (`≥`: every overlay edge — a cut edge, or a
//! clique edge weighted by an exact intra-shard distance — maps to a
//! real walk of the same length. `≤`: split any `a`–`b` path into cut
//! edges and maximal intra-shard segments; segment endpoints are
//! boundary vertices, so each segment is dominated by a clique edge.)
//! Let `P` be a shortest `s`–`t` path that touches the boundary, `a` its
//! first boundary vertex and `b` its last. The prefix `P[s..a]` touches
//! no cut edge, so it stays inside `s`'s shard; likewise the suffix.
//! Each leg is answered by an oracle with stretch `c_shard` (its mode's
//! bound) and the middle by the overlay oracle with stretch `c_ov`, so
//! the composed minimum is sandwiched:
//!
//! ```text
//! d_G(s,t) ≤ answer ≤ max(c_shard, c_ov) · d_G(s,t)
//! ```
//!
//! The lower bound holds because every leg answer upper-bounds a real
//! distance (`loc(s,a) ≥ d_G(s,a)` since a shard path is a `G` path, and
//! the overlay answer `≥ d_ov(a,b) = d_G(a,b)`). The overlay is a
//! weighted graph (clique weights are distances), so `c_ov` is the
//! *weighted* oracle bound even on unit-weight inputs; with the
//! calibrated test parameters that makes the composed constant **3.0**
//! (`max(2.0, 3.0)`), verified against exact Dijkstra in
//! `tests/sharded.rs`.
//!
//! Candidate pairs are scanned in sorted order with sound lower-bound
//! pruning (`loc(s,a) + loc(b,t) ≥ best` skips the pair; overlay
//! distances are nonnegative), so the default, uncapped scan returns the
//! exact minimum over all pairs. [`ShardedOracleBuilder::max_candidates`]
//! optionally truncates each candidate list — answers stay sound upper
//! bounds but the provable stretch constant no longer applies.
//!
//! ## Epoch coordination
//!
//! Each shard carries a journal epoch (bumped per reload), and the
//! overlay records the epoch vector it was computed from (its clique
//! weights depend on the shard graphs). [`ShardedOracle::assemble`]
//! **rejects** any stitch whose overlay `built_from` vector differs from
//! the shard epochs ([`PshError::ShardEpochMismatch`]) — a mixed-epoch
//! oracle cannot be constructed. A [`ShardedOracle`] is immutable;
//! [`ShardedReloader`] folds per-shard journals
//! (`<base>.shardK.journal`), rebuilds the changed shards *and* the
//! overlay as one new generation, and swaps it into the service
//! wholesale, so every batch's `query_attributed` epoch tag names one
//! consistent generation.

use crate::api::{OracleBuilder, Run, Seed};
use crate::distance::{DistanceOracle, OracleDescriptor};
use crate::error::PshError;
use crate::hopset::HopsetParams;
use crate::oracle::{ApproxShortestPaths, QueryResult};
use crate::snapshot::{
    apply_deltas, corrupt, journal_path, load_journal, owned_base_graph, OracleMeta, SnapshotError,
};
use psh_cluster::api::ClusterBuilder;
use psh_exec::ExecutionPolicy;
use psh_graph::subgraph::{split_by_labels, SubGraph};
use psh_graph::traversal::dijkstra::dijkstra;
use psh_graph::{quotient::quotient, CsrGraph, Edge, VertexId, INF};
use psh_pram::Cost;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Sentinel in [`ShardPlan`]'s dense parent→overlay map: not a boundary
/// vertex.
const NOT_BOUNDARY: u32 = u32::MAX;

/// Per-shard v2 snapshot sidecar: `<base>.shard<k>`.
pub fn shard_snapshot_path(base: impl AsRef<Path>, shard: usize) -> PathBuf {
    let mut os = base.as_ref().as_os_str().to_os_string();
    os.push(format!(".shard{shard}"));
    PathBuf::from(os)
}

/// Overlay v2 snapshot sidecar: `<base>.overlay`.
pub fn overlay_snapshot_path(base: impl AsRef<Path>) -> PathBuf {
    let mut os = base.as_ref().as_os_str().to_os_string();
    os.push(".overlay");
    PathBuf::from(os)
}

/// A partition of a graph into shards, with the boundary structure the
/// stitched oracle composes through. Produced by [`ShardPlan::compute`]
/// (clustering-as-partitioner) or reconstructed from a sharded manifest
/// via [`ShardPlan::from_parts`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPlan {
    n: usize,
    num_shards: usize,
    beta: f64,
    seed: Seed,
    shard_of: Vec<u32>,
    locals: Vec<Vec<VertexId>>,
    local_of: Vec<u32>,
    boundary: Vec<Vec<VertexId>>,
    boundary_global: Vec<VertexId>,
    overlay_of: Vec<u32>,
    cut_edges: Vec<Edge>,
    quotient_m: usize,
}

impl ShardPlan {
    /// Partition `g` into (at most) `shards` shards: cluster with
    /// exponential start times at granularity `beta` (doubling `beta`
    /// deterministically until enough clusters exist), then pack
    /// clusters onto shards largest-first, each onto the currently
    /// lightest shard. The effective shard count is
    /// `min(shards, clusters)` — never more shards than clusters.
    pub fn compute(
        g: &CsrGraph,
        shards: usize,
        beta: f64,
        seed: Seed,
        policy: ExecutionPolicy,
    ) -> Result<(ShardPlan, Cost), PshError> {
        if shards == 0 {
            return Err(PshError::InvalidShardCount { shards });
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(PshError::InvalidBetaOverride { beta });
        }
        let n = g.n();
        if n == 0 {
            let plan = ShardPlan::from_labels(0, 1, Vec::new(), Vec::new(), 0, beta, seed);
            return Ok((plan, Cost::ZERO));
        }
        let target = shards.min(n);
        let mut cost = Cost::ZERO;
        let mut chosen = None;
        let mut beta_a = beta;
        for attempt in 0..8u64 {
            let run = ClusterBuilder::new(beta_a)
                .seed(seed.child(attempt))
                .execution(policy)
                .build(g)?;
            cost = cost.then(run.cost);
            let enough = run.artifact.num_clusters >= target;
            chosen = Some(run.artifact);
            if enough {
                break;
            }
            beta_a *= 2.0;
        }
        let clustering = chosen.expect("at least one clustering attempt ran");

        // Pack clusters onto shards: largest cluster first, onto the
        // currently lightest shard; ties by lowest id. Deterministic.
        let k = shards.min(clustering.num_clusters.max(1));
        let sizes = clustering.sizes();
        let mut order: Vec<usize> = (0..clustering.num_clusters).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(sizes[c]), c));
        let mut load = vec![0usize; k];
        let mut shard_of_cluster = vec![0u32; clustering.num_clusters];
        for c in order {
            let s = (0..k).min_by_key(|&s| (load[s], s)).expect("k >= 1");
            shard_of_cluster[c] = s as u32;
            load[s] += sizes[c];
        }
        let shard_of: Vec<u32> = clustering
            .cluster_id
            .iter()
            .map(|&c| shard_of_cluster[c as usize])
            .collect();

        let cut_edges: Vec<Edge> = g
            .edges()
            .iter()
            .filter(|e| shard_of[e.u as usize] != shard_of[e.v as usize])
            .copied()
            .collect();
        let (q, qc) = quotient(g, &shard_of, k);
        cost = cost.then(qc).then(Cost::new(n as u64 + g.m() as u64, 2));
        let plan = ShardPlan::from_labels(n, k, shard_of, cut_edges, q.graph.m(), beta, seed);
        Ok((plan, cost))
    }

    /// Rebuild a plan from its serialized parts (the sharded manifest):
    /// the dense shard labeling plus the cut-edge list. Everything else
    /// — per-shard member lists, boundary sets, overlay ids — is
    /// re-derived.
    pub fn from_parts(
        n: usize,
        shards: usize,
        shard_of: Vec<u32>,
        cut_edges: Vec<Edge>,
        quotient_m: usize,
        beta: f64,
        seed: Seed,
    ) -> Result<ShardPlan, PshError> {
        if shards == 0 {
            return Err(PshError::InvalidShardCount { shards });
        }
        if shard_of.len() != n {
            return Err(PshError::ShardShapeMismatch {
                what: "shard labeling length",
                expected: n,
                found: shard_of.len(),
            });
        }
        if let Some(&bad) = shard_of.iter().find(|&&l| l as usize >= shards) {
            return Err(PshError::ShardShapeMismatch {
                what: "shard label range",
                expected: shards,
                found: bad as usize,
            });
        }
        Ok(ShardPlan::from_labels(
            n, shards, shard_of, cut_edges, quotient_m, beta, seed,
        ))
    }

    fn from_labels(
        n: usize,
        k: usize,
        shard_of: Vec<u32>,
        cut_edges: Vec<Edge>,
        quotient_m: usize,
        beta: f64,
        seed: Seed,
    ) -> ShardPlan {
        let mut locals: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut local_of = vec![0u32; n];
        for v in 0..n {
            let s = shard_of[v] as usize;
            local_of[v] = locals[s].len() as u32;
            locals[s].push(v as u32);
        }
        let mut is_boundary = vec![false; n];
        for e in &cut_edges {
            is_boundary[e.u as usize] = true;
            is_boundary[e.v as usize] = true;
        }
        let mut boundary: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut boundary_global = Vec::new();
        let mut overlay_of = vec![NOT_BOUNDARY; n];
        for v in 0..n {
            if is_boundary[v] {
                overlay_of[v] = boundary_global.len() as u32;
                boundary_global.push(v as u32);
                boundary[shard_of[v] as usize].push(v as u32);
            }
        }
        ShardPlan {
            n,
            num_shards: k,
            beta,
            seed,
            shard_of,
            locals,
            local_of,
            boundary,
            boundary_global,
            overlay_of,
            cut_edges,
            quotient_m,
        }
    }

    /// Vertices in the partitioned graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Effective shard count (`min` of the request and the cluster
    /// count).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The clustering granularity the plan was computed at.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The seed the partition derives from.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// The dense shard labeling (`labels[v] in 0..num_shards`).
    pub fn labels(&self) -> &[u32] {
        &self.shard_of
    }

    /// Which shard `v` lives on.
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.shard_of[v as usize]
    }

    /// `v`'s id inside its shard subgraph.
    pub fn local_id(&self, v: VertexId) -> VertexId {
        self.local_of[v as usize]
    }

    /// `(shard, local id)` for `v` — the address journal authors use,
    /// since per-shard journals speak shard-local ids.
    pub fn locate(&self, v: VertexId) -> (u32, VertexId) {
        (self.shard_of(v), self.local_id(v))
    }

    /// Members of shard `s`, in ascending parent-id order (this is the
    /// local-id order of the shard subgraph).
    pub fn members(&self, s: usize) -> &[VertexId] {
        &self.locals[s]
    }

    /// Boundary vertices of shard `s` (parent ids, ascending).
    pub fn boundary(&self, s: usize) -> &[VertexId] {
        &self.boundary[s]
    }

    /// All boundary vertices, ascending; index in this slice is the
    /// overlay vertex id.
    pub fn boundary_global(&self) -> &[VertexId] {
        &self.boundary_global
    }

    /// Whether `v` is an endpoint of a cut edge.
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.overlay_of[v as usize] != NOT_BOUNDARY
    }

    /// Cut edges (parent ids, original weights).
    pub fn cut_edges(&self) -> &[Edge] {
        &self.cut_edges
    }

    /// Edge count of the shard-adjacency quotient graph (`quotient` over
    /// the shard labeling) — how interconnected the shards are.
    pub fn quotient_edges(&self) -> usize {
        self.quotient_m
    }

    /// Materialize the shard subgraphs (`split_by_labels` over the shard
    /// labeling; member order matches [`ShardPlan::members`]).
    pub fn split(&self, g: &CsrGraph) -> (Vec<SubGraph>, Cost) {
        split_by_labels(g, &self.shard_of, self.num_shards)
    }

    /// Exact intra-shard boundary cliques for shard `s` on `shard_graph`
    /// (its subgraph): one edge per boundary pair, in overlay-id space,
    /// weighted by the exact shard-local Dijkstra distance; unreachable
    /// pairs are skipped. Deterministic.
    pub fn shard_cliques(&self, s: usize, shard_graph: &CsrGraph) -> Vec<Edge> {
        let bs = &self.boundary[s];
        let mut edges = Vec::new();
        for (i, &a) in bs.iter().enumerate() {
            if i + 1 == bs.len() {
                break;
            }
            let sp = dijkstra(shard_graph, self.local_of[a as usize]);
            for &b in &bs[i + 1..] {
                let d = sp.dist[self.local_of[b as usize] as usize];
                if d != INF {
                    edges.push(Edge::new(
                        self.overlay_of[a as usize],
                        self.overlay_of[b as usize],
                        d,
                    ));
                }
            }
        }
        edges
    }

    /// Assemble the overlay graph from per-shard cliques (overlay-id
    /// space) plus the cut edges. Returns `None` when there is no
    /// boundary (single effective shard, or no cut edges).
    pub fn overlay_graph(&self, cliques: &[Vec<Edge>]) -> Option<CsrGraph> {
        let n_ov = self.boundary_global.len();
        if n_ov == 0 {
            return None;
        }
        let mut edges: Vec<Edge> = self
            .cut_edges
            .iter()
            .map(|e| {
                Edge::new(
                    self.overlay_of[e.u as usize],
                    self.overlay_of[e.v as usize],
                    e.w,
                )
            })
            .collect();
        for c in cliques {
            edges.extend_from_slice(c);
        }
        Some(CsrGraph::from_edges(n_ov, edges))
    }
}

/// The overlay component of a stitched oracle: the boundary-graph
/// oracle plus the per-shard epoch vector its clique weights were
/// computed from. [`ShardedOracle::assemble`] refuses any stitch where
/// `built_from` disagrees with the shard epochs.
#[derive(Clone)]
pub struct OverlayPart {
    /// Oracle over the boundary graph (cut edges + exact cliques).
    pub oracle: Arc<ApproxShortestPaths>,
    /// Per-shard epochs the overlay was computed from.
    pub built_from: Vec<u64>,
}

/// Rebuildable provenance of a sharded build, alongside the oracle
/// itself: what the manifest persists and [`ShardedReloader`] needs to
/// fold journals (per-component metas, the band exponent, and the
/// current cliques).
#[derive(Clone, Debug)]
pub struct ShardedParts {
    /// Build meta (params / seed / cost) per shard, in shard order.
    pub shard_metas: Vec<OracleMeta>,
    /// Build meta for the overlay oracle (`None` when no boundary).
    pub overlay_meta: Option<OracleMeta>,
    /// Band exponent `η` every component was built with (`OracleMeta`
    /// does not carry it).
    pub eta: f64,
    /// Current per-shard boundary cliques, overlay-id space.
    pub cliques: Vec<Vec<Edge>>,
}

/// Builder for [`ShardedOracle`]: partition, build per-shard oracles in
/// parallel on the psh-exec pool, build the overlay, stitch.
#[derive(Clone, Debug)]
pub struct ShardedOracleBuilder {
    shards: usize,
    beta: f64,
    params: HopsetParams,
    eta: f64,
    seed: Seed,
    policy: ExecutionPolicy,
    max_candidates: Option<usize>,
}

impl ShardedOracleBuilder {
    /// Target `shards` shards (the effective count is capped by the
    /// cluster count). Defaults: `β = 0.25`, default [`HopsetParams`],
    /// `η = 0.5`, `Seed(0)`, [`ExecutionPolicy::from_env`], uncapped
    /// candidates.
    pub fn new(shards: usize) -> Self {
        ShardedOracleBuilder {
            shards,
            beta: 0.25,
            params: HopsetParams::default(),
            eta: 0.5,
            seed: Seed::default(),
            policy: ExecutionPolicy::from_env(),
            max_candidates: None,
        }
    }

    /// Partition granularity (doubled deterministically until at least
    /// `shards` clusters exist).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Hopset parameters for every component build (shards + overlay).
    pub fn params(mut self, params: HopsetParams) -> Self {
        self.params = params;
        self
    }

    /// Band exponent `η` for weighted component builds (default `0.5`).
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Root seed; shard `s` builds from `seed.child(1).child(s)`, the
    /// partition from `seed.child(0)`, the overlay from `seed.child(2)`.
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// How the build executes (artifacts are byte-identical for every
    /// policy; shard builds fan across the pool).
    pub fn execution(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Truncate each boundary-candidate list to the `cap` nearest
    /// candidates. Answers remain sound upper bounds and deterministic,
    /// but the documented stretch constant only holds uncapped.
    pub fn max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates = Some(cap);
        self
    }

    /// Check the settings without building.
    pub fn validate(&self) -> Result<(), PshError> {
        if self.shards == 0 {
            return Err(PshError::InvalidShardCount {
                shards: self.shards,
            });
        }
        if !(self.beta.is_finite() && self.beta > 0.0) {
            return Err(PshError::InvalidBetaOverride { beta: self.beta });
        }
        Ok(())
    }

    /// Partition, build, stitch. See [`ShardedOracleBuilder::build_with_parts`]
    /// when the caller also needs the rebuild provenance (manifests,
    /// reloaders).
    pub fn build(&self, g: &CsrGraph) -> Result<Run<ShardedOracle>, PshError> {
        self.build_with_parts(g).map(|(run, _)| run)
    }

    /// [`ShardedOracleBuilder::build`], also returning the
    /// [`ShardedParts`] a manifest or [`ShardedReloader`] needs.
    pub fn build_with_parts(
        &self,
        g: &CsrGraph,
    ) -> Result<(Run<ShardedOracle>, ShardedParts), PshError> {
        self.validate()?;
        let (plan, mut cost) =
            ShardPlan::compute(g, self.shards, self.beta, self.seed.child(0), self.policy)?;
        let k = plan.num_shards();
        let (subs, split_cost) = plan.split(g);
        cost = cost.then(split_cost);

        // Per-shard oracle builds fan across the pool; each inner build
        // runs sequentially (artifacts are policy-invariant, so this
        // only shapes wall-clock).
        let exec = self.policy.executor();
        let idxs: Vec<usize> = (0..k).collect();
        let built = exec.par_map(&idxs, 1, |&s| {
            OracleBuilder::new()
                .params(self.params)
                .eta(self.eta)
                .seed(self.seed.child(1).child(s as u64))
                .allow_large_weights(true)
                .execution(ExecutionPolicy::Sequential)
                .build(&subs[s].graph)
        });
        let mut shards = Vec::with_capacity(k);
        let mut shard_metas = Vec::with_capacity(k);
        let mut shard_costs = Vec::with_capacity(k);
        for run in built {
            let run = run?;
            shard_metas.push(OracleMeta::of_run(&run, self.params));
            shard_costs.push(run.cost);
            shards.push(Arc::new(run.artifact));
        }
        cost = cost.then(Cost::par_all(shard_costs));

        // Boundary cliques: one Dijkstra per (shard, boundary vertex),
        // all independent, fanned across the pool.
        let clique_tasks: Vec<usize> = (0..k).collect();
        let per_shard = exec.par_map(&clique_tasks, 1, |&s| {
            let edges = plan.shard_cliques(s, &subs[s].graph);
            let b = plan.boundary(s).len() as u64;
            let w = b * (subs[s].graph.n() + subs[s].graph.m() + 1) as u64;
            (edges, Cost::new(w, w))
        });
        let mut cliques = Vec::with_capacity(k);
        let mut clique_costs = Vec::with_capacity(k);
        for (edges, c) in per_shard {
            cliques.push(edges);
            clique_costs.push(c);
        }
        cost = cost.then(Cost::par_all(clique_costs));

        let epochs = vec![0u64; k];
        let (overlay, overlay_meta) = match plan.overlay_graph(&cliques) {
            Some(og) => {
                let run = OracleBuilder::new()
                    .params(self.params)
                    .eta(self.eta)
                    .seed(self.seed.child(2))
                    .allow_large_weights(true)
                    .execution(self.policy)
                    .build(&og)?;
                cost = cost.then(run.cost);
                let meta = OracleMeta::of_run(&run, self.params);
                (
                    Some(OverlayPart {
                        oracle: Arc::new(run.artifact),
                        built_from: epochs.clone(),
                    }),
                    Some(meta),
                )
            }
            None => (None, None),
        };

        let oracle =
            ShardedOracle::assemble(Arc::new(plan), shards, epochs, overlay, self.max_candidates)?;
        let parts = ShardedParts {
            shard_metas,
            overlay_meta,
            eta: self.eta,
            cliques,
        };
        Ok((
            Run {
                artifact: oracle,
                cost,
                seed: self.seed,
            },
            parts,
        ))
    }
}

/// A stitched oracle over a [`ShardPlan`]: per-shard oracles plus the
/// boundary overlay, answering through boundary composition. Immutable
/// after assembly; reloads build a whole new generation and swap it in.
/// See the module docs for the stretch bound and epoch guarantees.
#[derive(Clone)]
pub struct ShardedOracle {
    plan: Arc<ShardPlan>,
    shards: Vec<Arc<ApproxShortestPaths>>,
    overlay: Option<OverlayPart>,
    epochs: Vec<u64>,
    max_candidates: Option<usize>,
}

impl ShardedOracle {
    /// Stitch components into an oracle, enforcing shape and epoch
    /// consistency: shard count and per-shard vertex counts must match
    /// the plan, and the overlay's `built_from` vector must equal
    /// `epochs` — a mixed-epoch stitch is a constructor error
    /// ([`PshError::ShardEpochMismatch`]), not a wrong answer.
    pub fn assemble(
        plan: Arc<ShardPlan>,
        shards: Vec<Arc<ApproxShortestPaths>>,
        epochs: Vec<u64>,
        overlay: Option<OverlayPart>,
        max_candidates: Option<usize>,
    ) -> Result<ShardedOracle, PshError> {
        if shards.len() != plan.num_shards() {
            return Err(PshError::ShardShapeMismatch {
                what: "shard oracle count",
                expected: plan.num_shards(),
                found: shards.len(),
            });
        }
        if epochs.len() != plan.num_shards() {
            return Err(PshError::ShardShapeMismatch {
                what: "epoch vector length",
                expected: plan.num_shards(),
                found: epochs.len(),
            });
        }
        for (s, o) in shards.iter().enumerate() {
            if o.graph().n() != plan.members(s).len() {
                return Err(PshError::ShardShapeMismatch {
                    what: "shard vertex count",
                    expected: plan.members(s).len(),
                    found: o.graph().n(),
                });
            }
        }
        if let Some(ov) = &overlay {
            if ov.oracle.graph().n() != plan.boundary_global().len() {
                return Err(PshError::ShardShapeMismatch {
                    what: "overlay vertex count",
                    expected: plan.boundary_global().len(),
                    found: ov.oracle.graph().n(),
                });
            }
            if ov.built_from != epochs {
                return Err(PshError::ShardEpochMismatch {
                    expected: epochs,
                    found: ov.built_from.clone(),
                });
            }
        }
        Ok(ShardedOracle {
            plan,
            shards,
            overlay,
            epochs,
            max_candidates,
        })
    }

    /// The partition this oracle stitches over.
    pub fn plan(&self) -> &Arc<ShardPlan> {
        &self.plan
    }

    /// Shard `s`'s oracle.
    pub fn shard(&self, s: usize) -> &Arc<ApproxShortestPaths> {
        &self.shards[s]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The overlay component (`None` when the partition has no cut
    /// edges).
    pub fn overlay(&self) -> Option<&OverlayPart> {
        self.overlay.as_ref()
    }

    /// Per-shard journal epochs of this generation.
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The candidate cap, if any.
    pub fn max_candidates(&self) -> Option<usize> {
        self.max_candidates
    }

    /// Boundary candidates of `v`'s shard: `(overlay id, leg distance)`
    /// sorted by `(distance, id)`, finite legs only, truncated to the
    /// cap. The leg distance is `v`'s shard oracle's answer to the
    /// boundary vertex.
    fn candidates(&self, shard: u32, v: VertexId, cost: &mut Cost) -> Vec<(VertexId, f64)> {
        let s = shard as usize;
        let vl = self.plan.local_id(v);
        let mut out = Vec::with_capacity(self.plan.boundary(s).len());
        for &b in self.plan.boundary(s) {
            let (r, c) = self.shards[s].query(vl, self.plan.local_id(b));
            *cost = cost.then(c);
            if r.distance.is_finite() {
                out.push((self.plan.overlay_of[b as usize], r.distance));
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(cap) = self.max_candidates {
            out.truncate(cap);
        }
        out
    }

    /// Approximate `s`–`t` distance through the stitch: the same-shard
    /// local answer (when applicable) `min`-ed with the boundary
    /// composition, scanned in sorted candidate order with sound
    /// lower-bound pruning. Deterministic — answers *and* costs are
    /// identical for every [`ExecutionPolicy`]. Out-of-range ids panic,
    /// matching [`ApproxShortestPaths::query`].
    pub fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost) {
        if s == t {
            return (
                QueryResult {
                    distance: 0.0,
                    upper_bound: true,
                },
                Cost::ZERO,
            );
        }
        let ss = self.plan.shard_of(s);
        let ts = self.plan.shard_of(t);
        let mut cost = Cost::ZERO;
        let mut best = f64::INFINITY;
        if ss == ts {
            let (r, c) =
                self.shards[ss as usize].query(self.plan.local_id(s), self.plan.local_id(t));
            cost = cost.then(c);
            best = r.distance;
        }
        if let Some(ov) = &self.overlay {
            let ca = self.candidates(ss, s, &mut cost);
            let cb = self.candidates(ts, t, &mut cost);
            if !ca.is_empty() && !cb.is_empty() {
                let db_min = cb[0].1;
                for &(a, da) in &ca {
                    // Rows are sorted by leg distance: once even the
                    // nearest `b` cannot beat `best`, no later row can.
                    if da + db_min >= best {
                        break;
                    }
                    for &(b, db) in &cb {
                        // Overlay distances are nonnegative, so
                        // `da + db` lower-bounds the composed value.
                        if da + db >= best {
                            break;
                        }
                        let (r, c) = ov.oracle.query(a, b);
                        cost = cost.then(c);
                        let cand = da + r.distance + db;
                        if cand < best {
                            best = cand;
                        }
                    }
                }
            }
        }
        (
            QueryResult {
                distance: best,
                upper_bound: true,
            },
            cost,
        )
    }

    /// Batch queries, fanned across the psh-exec pool; answers in input
    /// order, byte-identical for every policy.
    pub fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        let exec = policy.executor();
        let answered = exec.par_map(pairs, 1, |&(s, t)| self.query(s, t));
        let cost = Cost::par_all(answered.iter().map(|(_, c)| *c));
        (answered.into_iter().map(|(r, _)| r).collect(), cost)
    }
}

impl std::fmt::Debug for ShardedOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOracle")
            .field("shards", &self.shards.len())
            .field("boundary", &self.plan.boundary_global().len())
            .field("epochs", &self.epochs)
            .field("max_candidates", &self.max_candidates)
            .finish()
    }
}

impl DistanceOracle for ShardedOracle {
    fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost) {
        ShardedOracle::query(self, s, t)
    }

    fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        ShardedOracle::query_batch(self, pairs, policy)
    }

    fn descriptor(&self) -> OracleDescriptor {
        OracleDescriptor {
            n: self.plan.n(),
            m: self.shards.iter().map(|o| o.graph().m()).sum::<usize>()
                + self.plan.cut_edges().len(),
            hopset_edges: self.shards.iter().map(|o| o.hopset_size()).sum::<usize>()
                + self
                    .overlay
                    .as_ref()
                    .map_or(0, |ov| ov.oracle.hopset_size()),
            shards: self.shards.len(),
            mapped: self.shards.iter().any(|o| o.is_mapped())
                || self
                    .overlay
                    .as_ref()
                    .is_some_and(|ov| ov.oracle.is_mapped()),
            epochs: self.epochs.clone(),
        }
    }
}

/// What one [`ShardedReloader::poll`] swap applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedReloadReport {
    /// The service epoch the new generation entered at.
    pub epoch: u64,
    /// Which shards folded new journal records, ascending.
    pub shards: Vec<u32>,
    /// Journal records applied across those shards.
    pub records: usize,
    /// Total ops across those records.
    pub ops: usize,
    /// Per-shard journal epochs of the generation now served.
    pub shard_epochs: Vec<u64>,
}

/// Drives journal-based hot swaps for a served [`ShardedOracle`]: one
/// journal per shard (`journal_path(shard_snapshot_path(base, s))`, i.e.
/// `<base>.shardS.journal`, ops in **shard-local** ids). A poll folds
/// every shard's fresh records, rebuilds only the changed shards, then
/// recomputes their cliques and the overlay so the new generation's
/// `built_from` matches its shard epochs, and swaps the whole stitched
/// oracle at once — the service never serves a mixed-epoch stitch.
/// Missing or shrunk journals reset that shard's cursor (a compact
/// folded them into the base), mirroring
/// [`JournalReloader`](crate::snapshot::JournalReloader).
pub struct ShardedReloader {
    base: PathBuf,
    current: Arc<ShardedOracle>,
    shard_graphs: Vec<CsrGraph>,
    parts: ShardedParts,
    consumed: Vec<usize>,
}

impl ShardedReloader {
    /// Track `oracle` (as served from the sharded manifest at
    /// `base_path`) with the provenance returned by
    /// [`ShardedOracleBuilder::build_with_parts`] or a manifest load.
    pub fn new(
        base_path: impl AsRef<Path>,
        oracle: Arc<ShardedOracle>,
        parts: ShardedParts,
    ) -> ShardedReloader {
        let shard_graphs = (0..oracle.num_shards())
            .map(|s| owned_base_graph(oracle.shard(s)))
            .collect();
        let consumed = vec![0; oracle.num_shards()];
        ShardedReloader {
            base: base_path.as_ref().to_path_buf(),
            current: oracle,
            shard_graphs,
            parts,
            consumed,
        }
    }

    /// The journal watched for shard `s`.
    pub fn journal(&self, s: usize) -> PathBuf {
        journal_path(shard_snapshot_path(&self.base, s))
    }

    /// The generation currently tracked (and served after the last
    /// successful poll).
    pub fn current(&self) -> &Arc<ShardedOracle> {
        &self.current
    }

    fn rebuild_component(
        g: &CsrGraph,
        meta: &OracleMeta,
        eta: f64,
    ) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
        // `rebuild_oracle` would re-validate the weight ratio; sharded
        // components are always built with `allow_large_weights` (the
        // overlay carries distances as weights), so rebuild the same way.
        let run = OracleBuilder::new()
            .params(meta.params)
            .eta(eta)
            .seed(meta.seed)
            .allow_large_weights(true)
            .build(g)
            .map_err(|e| corrupt("shard rebuild", e.to_string()))?;
        let meta = OracleMeta {
            params: meta.params,
            seed: meta.seed,
            build_cost: run.cost,
        };
        Ok((run.artifact, meta))
    }

    /// Fold any fresh per-shard journal records, rebuild the changed
    /// shards plus the overlay as one new generation, and hot-swap it
    /// into `service`. `Ok(None)` when no shard has anything new; errors
    /// leave the service serving its current generation untouched.
    pub fn poll(
        &mut self,
        service: &crate::service::OracleService,
    ) -> Result<Option<ShardedReloadReport>, SnapshotError> {
        let k = self.current.num_shards();
        let mut mutated: Vec<Option<CsrGraph>> = vec![None; k];
        let mut records = 0usize;
        let mut ops = 0usize;
        let mut changed = Vec::new();
        for s in 0..k {
            let (jn, deltas) = match load_journal(self.journal(s)) {
                Ok(j) => j,
                Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    self.consumed[s] = 0;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if jn != self.shard_graphs[s].n() {
                return Err(corrupt(
                    "shard journal vertex count",
                    format!(
                        "journal for shard {s} targets n = {jn}, shard graph has n = {}",
                        self.shard_graphs[s].n()
                    ),
                ));
            }
            if deltas.len() < self.consumed[s] {
                self.consumed[s] = 0;
            }
            if deltas.len() == self.consumed[s] {
                continue;
            }
            let fresh = &deltas[self.consumed[s]..];
            mutated[s] = Some(apply_deltas(&self.shard_graphs[s], fresh)?);
            records += fresh.len();
            ops += fresh.iter().map(|d| d.len()).sum::<usize>();
            self.consumed[s] = deltas.len();
            changed.push(s as u32);
        }
        if changed.is_empty() {
            return Ok(None);
        }

        // Rebuild the changed shards; healthy shards keep their Arc.
        let mut epochs = self.current.epochs().to_vec();
        let mut shards: Vec<Arc<ApproxShortestPaths>> =
            (0..k).map(|s| Arc::clone(self.current.shard(s))).collect();
        for &s in &changed {
            let s = s as usize;
            let g = mutated[s]
                .take()
                .expect("changed shard has a mutated graph");
            let (rebuilt, meta) =
                Self::rebuild_component(&g, &self.parts.shard_metas[s], self.parts.eta)?;
            shards[s] = Arc::new(rebuilt);
            self.parts.shard_metas[s] = meta;
            self.parts.cliques[s] = self.current.plan().shard_cliques(s, &g);
            self.shard_graphs[s] = g;
            epochs[s] += 1;
        }

        // The overlay's cliques depend on the shard graphs, so it is
        // rebuilt whenever any shard changes; its `built_from` vector is
        // the new epoch vector, which is what `assemble` checks.
        let plan = Arc::clone(self.current.plan());
        let overlay = match plan.overlay_graph(&self.parts.cliques) {
            Some(og) => {
                let meta = self
                    .parts
                    .overlay_meta
                    .as_ref()
                    .ok_or_else(|| corrupt("overlay meta", "missing for a boundaried plan"))?;
                let (rebuilt, meta) = Self::rebuild_component(&og, meta, self.parts.eta)?;
                self.parts.overlay_meta = Some(meta);
                Some(OverlayPart {
                    oracle: Arc::new(rebuilt),
                    built_from: epochs.clone(),
                })
            }
            None => None,
        };
        let next = ShardedOracle::assemble(
            plan,
            shards,
            epochs.clone(),
            overlay,
            self.current.max_candidates(),
        )
        .map_err(|e| corrupt("sharded reassembly", e.to_string()))?;
        let next = Arc::new(next);
        let epoch = service.swap_oracle(next.clone() as Arc<dyn DistanceOracle>);
        self.current = next;
        Ok(Some(ShardedReloadReport {
            epoch,
            shards: changed,
            records,
            ops,
            shard_epochs: epochs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::dijkstra::dijkstra_pair;

    fn params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn build(g: &CsrGraph, shards: usize, policy: ExecutionPolicy) -> ShardedOracle {
        ShardedOracleBuilder::new(shards)
            .params(params())
            .seed(Seed(7))
            .execution(policy)
            .build(g)
            .unwrap()
            .artifact
    }

    #[test]
    fn plan_partitions_and_extracts_boundary() {
        let g = generators::grid(9, 9);
        let (plan, _) =
            ShardPlan::compute(&g, 3, 0.25, Seed(3), ExecutionPolicy::Sequential).unwrap();
        assert!(plan.num_shards() >= 1 && plan.num_shards() <= 3);
        let mut seen = vec![false; g.n()];
        for s in 0..plan.num_shards() {
            for &v in plan.members(s) {
                assert!(!seen[v as usize], "vertex {v} in two shards");
                seen[v as usize] = true;
                assert_eq!(plan.shard_of(v), s as u32);
                assert_eq!(plan.members(s)[plan.local_id(v) as usize], v);
            }
        }
        assert!(seen.into_iter().all(|b| b), "every vertex is assigned");
        let intra: usize = plan.split(&g).0.iter().map(|sub| sub.graph.m()).sum();
        assert_eq!(intra + plan.cut_edges().len(), g.m());
        for e in plan.cut_edges() {
            assert!(plan.is_boundary(e.u) && plan.is_boundary(e.v));
        }
        let from_bd: usize = (0..plan.num_shards()).map(|s| plan.boundary(s).len()).sum();
        assert_eq!(from_bd, plan.boundary_global().len());
    }

    #[test]
    fn sharded_answers_sandwich_and_match_across_policies() {
        let g = generators::grid(8, 8);
        let seq = build(&g, 4, ExecutionPolicy::Sequential);
        let par = build(&g, 4, ExecutionPolicy::Parallel { threads: 4 });
        assert!(
            seq.num_shards() > 1,
            "grid should split into several shards"
        );
        for s in [0u32, 5, 17, 40] {
            for t in [63u32, 9, 33, 2] {
                let (a, ca) = seq.query(s, t);
                let (b, cb) = par.query(s, t);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                assert_eq!(ca, cb);
                let exact = dijkstra_pair(&g, s, t) as f64;
                assert!(a.distance >= exact - 1e-9, "answer below exact");
                assert!(a.distance <= 3.0 * exact + 1e-9, "stretch bound violated");
            }
        }
    }

    #[test]
    fn single_shard_has_no_overlay() {
        let g = generators::grid(5, 5);
        let o = build(&g, 1, ExecutionPolicy::Sequential);
        assert_eq!(o.num_shards(), 1);
        assert!(o.overlay().is_none());
        assert!(o.plan().cut_edges().is_empty());
        let exact = dijkstra_pair(&g, 0, 24) as f64;
        let d = o.query(0, 24).0.distance;
        assert!(d >= exact - 1e-9 && d <= 2.0 * exact + 1e-9);
    }

    #[test]
    fn descriptor_sums_components() {
        let g = generators::grid(8, 8);
        let o = build(&g, 4, ExecutionPolicy::Sequential);
        let d = DistanceOracle::descriptor(&o);
        assert_eq!(d.n, 64);
        assert_eq!(d.m, g.m());
        assert_eq!(d.shards, o.num_shards());
        assert_eq!(d.epochs, vec![0; o.num_shards()]);
        assert!(!d.mapped);
    }

    #[test]
    fn mixed_epoch_stitch_is_rejected() {
        let g = generators::grid(8, 8);
        let o = build(&g, 4, ExecutionPolicy::Sequential);
        let plan = Arc::clone(o.plan());
        let shards: Vec<_> = (0..o.num_shards())
            .map(|s| Arc::clone(o.shard(s)))
            .collect();
        let epochs = vec![1u64; o.num_shards()];
        let stale = OverlayPart {
            oracle: Arc::clone(&o.overlay().unwrap().oracle),
            built_from: vec![0u64; o.num_shards()],
        };
        let err = ShardedOracle::assemble(plan, shards, epochs.clone(), Some(stale), None)
            .expect_err("stale overlay must be rejected");
        assert_eq!(
            err,
            PshError::ShardEpochMismatch {
                expected: epochs,
                found: vec![0u64; o.num_shards()],
            }
        );
    }

    #[test]
    fn capped_candidates_stay_sound() {
        let g = generators::grid(8, 8);
        let full = build(&g, 4, ExecutionPolicy::Sequential);
        let capped = ShardedOracleBuilder::new(4)
            .params(params())
            .seed(Seed(7))
            .execution(ExecutionPolicy::Sequential)
            .max_candidates(2)
            .build(&g)
            .unwrap()
            .artifact;
        for (s, t) in [(0u32, 63u32), (7, 56), (20, 43)] {
            let exact = dijkstra_pair(&g, s, t) as f64;
            let d = capped.query(s, t).0.distance;
            assert!(d >= exact - 1e-9, "capped answer below exact");
            assert!(d >= full.query(s, t).0.distance - 1e-9);
        }
    }
}
