//! The builder/pipeline API: typed, seeded, fallible construction of every
//! artifact in the reproduction.
//!
//! This is the surface all scaling work builds on (batch query serving,
//! artifact caching by seed, multi-backend selection). The contract, shared
//! with [`psh_cluster::ClusterBuilder`]:
//!
//! * builders consume a `&CsrGraph` plus a [`Seed`] and return
//!   `Result<Run<A>, PshError>` — a [`Run`] carries the artifact, its
//!   [`psh_pram::Cost`], and the seed that produced it;
//! * invalid parameters and violated preconditions are [`PshError`]
//!   values, never panics;
//! * the same `Seed` always rebuilds the byte-identical artifact, and
//!   matches what the deprecated free functions produce for an RNG seeded
//!   with the same value (enforced by the `builder_equivalence`
//!   integration tests).
//!
//! ```
//! use psh_core::api::{Seed, SpannerBuilder};
//! use psh_graph::generators;
//!
//! let g = generators::grid(12, 12);
//! let run = SpannerBuilder::unweighted(3.0).seed(Seed(7)).build(&g).unwrap();
//! assert!(run.artifact.size() < g.m() + g.n());
//! assert_eq!(run.seed, Seed(7));
//! ```

use crate::error::PshError;
use crate::hopset::unweighted::build_hopset_with_beta0_on;
use crate::hopset::weighted::build_weighted_hopsets_impl;
use crate::hopset::{limited, Hopset, HopsetParams, WeightedHopsets};
use crate::oracle::ApproxShortestPaths;
use crate::spanner::unweighted::{beta_for, spanner_from_clustering_with};
use crate::spanner::weighted::weighted_spanner_impl;
use crate::spanner::well_separated::well_separated_spanner_with;
use crate::spanner::Spanner;
use psh_cluster::ClusterBuilder;
use psh_exec::ExecutionPolicy;
use psh_graph::connectivity::components_union_find;
use psh_graph::CsrGraph;
use psh_pram::Cost;
use rand::Rng;

pub use psh_cluster::api::{Run, Seed};

/// Count connected components for `require_connected` validation.
fn component_count(g: &CsrGraph) -> usize {
    components_union_find(g).0.count
}

// ---------------------------------------------------------------------------
// Spanners (Theorem 1.1)
// ---------------------------------------------------------------------------

/// Which spanner construction to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpannerKind {
    /// Algorithm 2: one clustering at `β = ln n / 2k` plus boundary edges.
    /// Requires unit weights.
    Unweighted,
    /// Algorithm 3 over explicit, ascending, well-separated weight levels
    /// (canonical edge ids per level).
    WellSeparated { levels: Vec<Vec<u32>> },
    /// Theorem 3.3: bucket by powers of two, deal into `O(log k)`
    /// well-separated groups, run Algorithm 3 per group.
    Weighted,
}

/// Builder for the spanner constructions of §3.
#[derive(Clone, Debug)]
pub struct SpannerBuilder {
    kind: SpannerKind,
    stretch_k: f64,
    beta_override: Option<f64>,
    seed: Seed,
    require_connected: bool,
    policy: ExecutionPolicy,
}

impl SpannerBuilder {
    /// Algorithm 2 on a unit-weight graph with stretch parameter `k`.
    pub fn unweighted(k: f64) -> Self {
        Self::with_kind(SpannerKind::Unweighted, k)
    }

    /// Theorem 3.3 on an arbitrarily weighted graph.
    pub fn weighted(k: f64) -> Self {
        Self::with_kind(SpannerKind::Weighted, k)
    }

    /// Algorithm 3 over caller-supplied well-separated weight levels.
    pub fn well_separated(k: f64, levels: Vec<Vec<u32>>) -> Self {
        Self::with_kind(SpannerKind::WellSeparated { levels }, k)
    }

    fn with_kind(kind: SpannerKind, k: f64) -> Self {
        SpannerBuilder {
            kind,
            stretch_k: k,
            beta_override: None,
            seed: Seed::default(),
            require_connected: false,
            policy: ExecutionPolicy::default(),
        }
    }

    /// Choose how the construction executes (default:
    /// [`ExecutionPolicy::from_env`]). Artifacts and costs are
    /// byte-identical for every policy; only wall-clock changes.
    pub fn execution(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Change the stretch parameter.
    pub fn stretch_k(mut self, k: f64) -> Self {
        self.stretch_k = k;
        self
    }

    /// Override the paper's `β = ln n / 2k` clustering parameter
    /// (unweighted kind only; ablation experiments sweep this).
    pub fn beta_override(mut self, beta: f64) -> Self {
        self.beta_override = Some(beta);
        self
    }

    /// Set the RNG seed (default `Seed(0)`).
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Reject disconnected inputs with [`PshError::Disconnected`] instead
    /// of spanning each component separately (default: off).
    pub fn require_connected(mut self, yes: bool) -> Self {
        self.require_connected = yes;
        self
    }

    /// Check parameters and preconditions against `g` without building.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), PshError> {
        if !(self.stretch_k >= 1.0 && self.stretch_k.is_finite()) {
            return Err(PshError::InvalidStretch { k: self.stretch_k });
        }
        if let Some(beta) = self.beta_override {
            if !matches!(self.kind, SpannerKind::Unweighted) {
                return Err(PshError::SettingNotApplicable {
                    setting: "beta_override",
                    kind: "weighted/well-separated spanner",
                });
            }
            if !(beta > 0.0 && beta.is_finite()) {
                return Err(PshError::InvalidBetaOverride { beta });
            }
        }
        if matches!(self.kind, SpannerKind::Unweighted) && !g.is_unit_weight() {
            return Err(PshError::RequiresUnitWeights {
                algorithm: "unweighted_spanner",
            });
        }
        if let SpannerKind::WellSeparated { levels } = &self.kind {
            if levels.is_empty() {
                return Err(PshError::MissingLevels);
            }
        }
        if self.require_connected && g.n() > 0 {
            let components = component_count(g);
            if components > 1 {
                return Err(PshError::Disconnected { components });
            }
        }
        Ok(())
    }

    /// Build the spanner with this builder's seed.
    pub fn build(&self, g: &CsrGraph) -> Result<Run<Spanner>, PshError> {
        let mut rng = self.seed.rng();
        let (artifact, cost) = self.build_with_rng(g, &mut rng)?;
        Ok(Run {
            artifact,
            cost,
            seed: self.seed,
        })
    }

    /// Build against a caller-supplied generator — the compatibility spine
    /// the deprecated free functions delegate to. Prefer
    /// [`SpannerBuilder::build`], which records the seed.
    pub fn build_with_rng<R: Rng>(
        &self,
        g: &CsrGraph,
        rng: &mut R,
    ) -> Result<(Spanner, Cost), PshError> {
        self.validate(g)?;
        let k = self.stretch_k;
        let exec = self.policy.executor();
        match &self.kind {
            SpannerKind::Unweighted => {
                let n = g.n();
                if n <= 1 || g.m() == 0 {
                    return Ok((Spanner::new(n, Vec::new()), Cost::ZERO));
                }
                let beta = self.beta_override.unwrap_or_else(|| beta_for(n, k));
                let (clustering, c_cost) =
                    ClusterBuilder::new(beta).build_with_rng_on(&exec, g, rng)?;
                let (spanner, s_cost) = spanner_from_clustering_with(&exec, g, &clustering);
                Ok((spanner, c_cost.then(s_cost)))
            }
            SpannerKind::Weighted => Ok(weighted_spanner_impl(&exec, g, k, rng)),
            SpannerKind::WellSeparated { levels } => {
                let (edges, cost) = well_separated_spanner_with(&exec, g, levels, k, rng);
                Ok((Spanner::new(g.n(), edges), cost))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hopsets (Theorem 1.2, §5, Appendix C)
// ---------------------------------------------------------------------------

/// Which hopset construction to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HopsetKind {
    /// Algorithm 4 on a unit-weight (or §5-pre-rounded integer) graph.
    Unweighted,
    /// §5: one Algorithm 4 hopset per distance band `d = (n^η)^j`.
    Weighted { eta: f64 },
    /// Appendix C: iterated limited hopsets targeting `O(n^α)`-hop paths.
    Limited { alpha: f64 },
}

/// What a [`HopsetBuilder`] run produced.
#[derive(Clone, Debug)]
pub enum HopsetArtifact {
    /// A single shortcut-edge set (unweighted / limited kinds).
    Single(Hopset),
    /// The per-distance-band family of §5 (weighted kind).
    Banded(WeightedHopsets),
}

impl HopsetArtifact {
    /// Total number of shortcut edges.
    pub fn size(&self) -> usize {
        match self {
            HopsetArtifact::Single(h) => h.size(),
            HopsetArtifact::Banded(b) => b.total_size(),
        }
    }

    /// The single hopset, if this run produced one.
    pub fn as_single(&self) -> Option<&Hopset> {
        match self {
            HopsetArtifact::Single(h) => Some(h),
            HopsetArtifact::Banded(_) => None,
        }
    }

    /// The banded family, if this run produced one.
    pub fn as_banded(&self) -> Option<&WeightedHopsets> {
        match self {
            HopsetArtifact::Single(_) => None,
            HopsetArtifact::Banded(b) => Some(b),
        }
    }

    /// Unwrap the single hopset (panics on a banded artifact — only call
    /// after building with the unweighted/limited kinds).
    pub fn into_single(self) -> Hopset {
        match self {
            HopsetArtifact::Single(h) => h,
            HopsetArtifact::Banded(_) => {
                panic!("weighted hopset runs produce a banded artifact")
            }
        }
    }
}

/// Builder for the hopset constructions of §4, §5, and Appendix C.
#[derive(Clone, Debug)]
pub struct HopsetBuilder {
    kind: HopsetKind,
    params: HopsetParams,
    beta0_override: Option<f64>,
    seed: Seed,
    policy: ExecutionPolicy,
}

impl HopsetBuilder {
    /// Algorithm 4 with the paper's default parameters.
    pub fn unweighted() -> Self {
        Self::with_kind(HopsetKind::Unweighted)
    }

    /// §5's banded construction with band exponent `eta ∈ (0, 1)`.
    pub fn weighted(eta: f64) -> Self {
        Self::with_kind(HopsetKind::Weighted { eta })
    }

    /// Appendix C's low-depth construction targeting `O(n^alpha)`-hop
    /// queries, `alpha ∈ (0, 1)` — `alpha` is the *hop target* exponent.
    ///
    /// This variant derives its internal parameters from `alpha` and
    /// [`HopsetBuilder::epsilon`] (Lemma C.1); the other knobs
    /// (`delta`, `gamma1`, `gamma2`) are not read, and
    /// `beta0_override` is rejected at validation.
    pub fn limited(alpha: f64) -> Self {
        Self::with_kind(HopsetKind::Limited { alpha })
    }

    fn with_kind(kind: HopsetKind) -> Self {
        HopsetBuilder {
            kind,
            params: HopsetParams::default(),
            beta0_override: None,
            seed: Seed::default(),
            policy: ExecutionPolicy::default(),
        }
    }

    /// Choose how the construction executes (default:
    /// [`ExecutionPolicy::from_env`]). Artifacts and costs are
    /// byte-identical for every policy; only wall-clock changes.
    pub fn execution(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the full parameter set.
    pub fn params(mut self, params: HopsetParams) -> Self {
        self.params = params;
        self
    }

    /// Per-level distortion budget `ε ∈ (0, 1)`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.params.epsilon = epsilon;
        self
    }

    /// Small-cluster threshold exponent `δ > 1` — this sets the
    /// large-cluster divisor `ρ = (k·log n/ε)^δ` of Algorithm 4.
    pub fn delta(mut self, delta: f64) -> Self {
        self.params.delta = delta;
        self
    }

    /// Base-case exponent `γ₁` (recursion stops below `n^{γ₁}` vertices).
    pub fn gamma1(mut self, gamma1: f64) -> Self {
        self.params.gamma1 = gamma1;
        self
    }

    /// Top-level exponent `γ₂` (`β₀ = n^{−γ₂}`).
    pub fn gamma2(mut self, gamma2: f64) -> Self {
        self.params.gamma2 = gamma2;
        self
    }

    /// Override the derived top-level `β₀` (§5 / Appendix C call patterns).
    pub fn beta0_override(mut self, beta0: f64) -> Self {
        self.beta0_override = Some(beta0);
        self
    }

    /// Set the RNG seed (default `Seed(0)`).
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Check parameters without building.
    pub fn validate(&self) -> Result<(), PshError> {
        self.params
            .validate()
            .map_err(|reason| PshError::InvalidHopsetParams { reason })?;
        if let Some(beta0) = self.beta0_override {
            if matches!(self.kind, HopsetKind::Limited { .. }) {
                // Appendix C derives its own β₀ per band from (α, ε)
                return Err(PshError::SettingNotApplicable {
                    setting: "beta0_override",
                    kind: "limited hopset",
                });
            }
            if !(beta0 > 0.0 && beta0.is_finite()) {
                return Err(PshError::InvalidBetaOverride { beta: beta0 });
            }
        }
        match self.kind {
            HopsetKind::Unweighted => Ok(()),
            HopsetKind::Weighted { eta } => {
                if eta > 0.0 && eta < 1.0 {
                    Ok(())
                } else {
                    Err(PshError::InvalidEta { eta })
                }
            }
            HopsetKind::Limited { alpha } => {
                if alpha > 0.0 && alpha < 1.0 {
                    Ok(())
                } else {
                    Err(PshError::InvalidAlpha { alpha })
                }
            }
        }
    }

    /// Build the hopset with this builder's seed.
    pub fn build(&self, g: &CsrGraph) -> Result<Run<HopsetArtifact>, PshError> {
        let mut rng = self.seed.rng();
        let (artifact, cost) = self.build_with_rng(g, &mut rng)?;
        Ok(Run {
            artifact,
            cost,
            seed: self.seed,
        })
    }

    /// Build against a caller-supplied generator — the compatibility spine
    /// the deprecated free functions delegate to.
    pub fn build_with_rng<R: Rng>(
        &self,
        g: &CsrGraph,
        rng: &mut R,
    ) -> Result<(HopsetArtifact, Cost), PshError> {
        self.validate()?;
        let exec = self.policy.executor();
        match self.kind {
            HopsetKind::Unweighted => {
                let beta0 = self
                    .beta0_override
                    .unwrap_or_else(|| self.params.beta0(g.n()));
                let (h, cost) = build_hopset_with_beta0_on(&exec, g, &self.params, beta0, rng);
                Ok((HopsetArtifact::Single(h), cost))
            }
            HopsetKind::Weighted { eta } => {
                let beta0 = self
                    .beta0_override
                    .unwrap_or_else(|| self.params.beta0_weighted(g.n()));
                let (b, cost) =
                    build_weighted_hopsets_impl(&exec, g, &self.params, eta, beta0, rng);
                Ok((HopsetArtifact::Banded(b), cost))
            }
            HopsetKind::Limited { alpha } => {
                let (h, cost) =
                    limited::low_depth_hopset_impl(&exec, g, alpha, self.params.epsilon, rng);
                Ok((HopsetArtifact::Single(h), cost))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The approximate-distance oracle (Theorem 1.2 end-to-end)
// ---------------------------------------------------------------------------

/// How the oracle chooses its preprocessing path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMode {
    /// Unit-weight graphs take the unweighted path, everything else the
    /// weighted path.
    Auto,
    /// Force Corollary 4.5's unweighted path (errors on weighted input).
    Unweighted,
    /// Force the §5 banded path (works on unit weights too).
    Weighted,
}

/// Builder for the end-to-end `(1+ε)`-approximate shortest-path oracle.
#[derive(Clone, Debug)]
pub struct OracleBuilder {
    params: HopsetParams,
    eta: f64,
    mode: OracleMode,
    seed: Seed,
    require_connected: bool,
    allow_large_weights: bool,
    policy: ExecutionPolicy,
}

impl Default for OracleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl OracleBuilder {
    pub fn new() -> Self {
        OracleBuilder {
            params: HopsetParams::default(),
            eta: 0.5,
            mode: OracleMode::Auto,
            seed: Seed::default(),
            require_connected: false,
            allow_large_weights: false,
            policy: ExecutionPolicy::default(),
        }
    }

    /// Choose how preprocessing executes (default:
    /// [`ExecutionPolicy::from_env`]). Artifacts and costs are
    /// byte-identical for every policy; only wall-clock changes.
    pub fn execution(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the hopset parameter set.
    pub fn params(mut self, params: HopsetParams) -> Self {
        self.params = params;
        self
    }

    /// Per-level distortion budget `ε ∈ (0, 1)`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.params.epsilon = epsilon;
        self
    }

    /// Band exponent for the weighted path (default `0.5`).
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Select the preprocessing path (default [`OracleMode::Auto`]).
    pub fn mode(mut self, mode: OracleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the RNG seed (default `Seed(0)`).
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Reject disconnected inputs (default: off — disconnected queries
    /// report `∞` and are well-defined).
    pub fn require_connected(mut self, yes: bool) -> Self {
        self.require_connected = yes;
        self
    }

    /// Skip the polynomial weight-ratio precondition check (Corollary 5.4
    /// assumes `w_max/w_min ≤ n³`; beyond that, accuracy degrades unless
    /// the Appendix B decomposition is applied first).
    pub fn allow_large_weights(mut self, yes: bool) -> Self {
        self.allow_large_weights = yes;
        self
    }

    fn takes_weighted_path(&self, g: &CsrGraph) -> bool {
        match self.mode {
            OracleMode::Auto => !g.is_unit_weight(),
            OracleMode::Unweighted => false,
            OracleMode::Weighted => true,
        }
    }

    /// Check parameters and preconditions against `g` without building.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), PshError> {
        self.params
            .validate()
            .map_err(|reason| PshError::InvalidHopsetParams { reason })?;
        let weighted = self.takes_weighted_path(g);
        if weighted {
            if !(self.eta > 0.0 && self.eta < 1.0) {
                return Err(PshError::InvalidEta { eta: self.eta });
            }
            if !self.allow_large_weights {
                let ratio = g.weight_ratio();
                let bound = (g.n().max(2) as f64).powi(3);
                if ratio > bound {
                    return Err(PshError::WeightRangeTooLarge { ratio, bound });
                }
            }
        } else if !g.is_unit_weight() {
            return Err(PshError::RequiresUnitWeights {
                algorithm: "the unweighted oracle path",
            });
        }
        if self.require_connected && g.n() > 0 {
            let components = component_count(g);
            if components > 1 {
                return Err(PshError::Disconnected { components });
            }
        }
        Ok(())
    }

    /// Preprocess `g` with this builder's seed.
    pub fn build(&self, g: &CsrGraph) -> Result<Run<ApproxShortestPaths>, PshError> {
        let mut rng = self.seed.rng();
        let (artifact, cost) = self.build_with_rng(g, &mut rng)?;
        Ok(Run {
            artifact,
            cost,
            seed: self.seed,
        })
    }

    /// Preprocess against a caller-supplied generator — the compatibility
    /// spine the deprecated constructors delegate to.
    pub fn build_with_rng<R: Rng>(
        &self,
        g: &CsrGraph,
        rng: &mut R,
    ) -> Result<(ApproxShortestPaths, Cost), PshError> {
        self.validate(g)?;
        let exec = self.policy.executor();
        if self.takes_weighted_path(g) {
            Ok(ApproxShortestPaths::build_weighted_impl(
                &exec,
                g,
                &self.params,
                self.eta,
                rng,
            ))
        } else {
            Ok(ApproxShortestPaths::build_unweighted_impl(
                &exec,
                g,
                &self.params,
                rng,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::{generators, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spanner_invalid_k_is_typed_error() {
        let g = generators::grid(4, 4);
        for k in [0.0, 0.5, -3.0, f64::NAN] {
            let err = SpannerBuilder::unweighted(k).build(&g).unwrap_err();
            assert!(matches!(err, PshError::InvalidStretch { .. }), "k={k}");
        }
    }

    #[test]
    fn spanner_weighted_input_rejected_by_unweighted_kind() {
        let g = CsrGraph::from_edges(3, [psh_graph::Edge::new(0, 1, 5)]);
        let err = SpannerBuilder::unweighted(2.0).build(&g).unwrap_err();
        assert!(matches!(err, PshError::RequiresUnitWeights { .. }));
        // the weighted kind accepts it
        assert!(SpannerBuilder::weighted(2.0).build(&g).is_ok());
    }

    #[test]
    fn spanner_beta_override_changes_granularity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::connected_random(300, 900, &mut rng);
        let base = SpannerBuilder::unweighted(2.0).seed(Seed(5));
        let default_run = base.clone().build(&g).unwrap();
        // β = 50: singleton clusters, so every edge becomes a boundary pick
        let dense_run = base.clone().beta_override(50.0).build(&g).unwrap();
        assert!(dense_run.artifact.size() >= default_run.artifact.size());
        let err = base.beta_override(-1.0).build(&g).unwrap_err();
        assert!(matches!(err, PshError::InvalidBetaOverride { .. }));
    }

    #[test]
    fn inapplicable_settings_are_rejected_not_ignored() {
        let g = generators::path(8);
        let err = SpannerBuilder::weighted(2.0)
            .beta_override(0.3)
            .build(&g)
            .unwrap_err();
        assert!(
            matches!(err, PshError::SettingNotApplicable { setting, .. } if setting == "beta_override")
        );
        let err = HopsetBuilder::limited(0.5)
            .beta0_override(0.01)
            .build(&g)
            .unwrap_err();
        assert!(
            matches!(err, PshError::SettingNotApplicable { setting, .. } if setting == "beta0_override")
        );
    }

    #[test]
    fn spanner_require_connected_rejects_disconnected() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1), (2, 3)]);
        let err = SpannerBuilder::unweighted(2.0)
            .require_connected(true)
            .build(&g)
            .unwrap_err();
        assert_eq!(err, PshError::Disconnected { components: 2 });
        // without the flag it spans each component
        assert!(SpannerBuilder::unweighted(2.0).build(&g).is_ok());
    }

    #[test]
    fn well_separated_kind_needs_levels() {
        let g = generators::path(5);
        let err = SpannerBuilder::well_separated(2.0, Vec::new())
            .build(&g)
            .unwrap_err();
        assert_eq!(err, PshError::MissingLevels);
        let levels = vec![(0..g.m() as u32).collect::<Vec<_>>()];
        let run = SpannerBuilder::well_separated(2.0, levels)
            .build(&g)
            .unwrap();
        assert!(run.artifact.is_subgraph_of(&g));
    }

    #[test]
    fn hopset_invalid_params_are_typed_errors() {
        let g = generators::path(8);
        let err = HopsetBuilder::unweighted()
            .epsilon(0.0)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PshError::InvalidHopsetParams { .. }));
        let err = HopsetBuilder::unweighted()
            .delta(1.0)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PshError::InvalidHopsetParams { .. }));
        let err = HopsetBuilder::weighted(0.0).build(&g).unwrap_err();
        assert_eq!(err, PshError::InvalidEta { eta: 0.0 });
        let err = HopsetBuilder::limited(1.5).build(&g).unwrap_err();
        assert_eq!(err, PshError::InvalidAlpha { alpha: 1.5 });
    }

    #[test]
    fn hopset_artifact_accessors_match_kind() {
        let g = generators::grid(8, 8);
        let single = HopsetBuilder::unweighted()
            .epsilon(0.5)
            .delta(1.5)
            .gamma1(0.25)
            .gamma2(0.75)
            .seed(Seed(3))
            .build(&g)
            .unwrap();
        assert!(single.artifact.as_single().is_some());
        assert!(single.artifact.as_banded().is_none());

        let mut rng = StdRng::seed_from_u64(4);
        let wg = generators::with_uniform_weights(&g, 1, 9, &mut rng);
        let banded = HopsetBuilder::weighted(0.5)
            .epsilon(0.5)
            .delta(1.5)
            .gamma1(0.25)
            .gamma2(0.75)
            .seed(Seed(5))
            .build(&wg)
            .unwrap();
        assert!(banded.artifact.as_banded().is_some());
        assert_eq!(
            banded.artifact.size(),
            banded.artifact.as_banded().unwrap().total_size()
        );
    }

    #[test]
    fn oracle_auto_routes_by_weights_and_answers() {
        let g = generators::grid(8, 8);
        let run = OracleBuilder::new()
            .params(HopsetParams {
                epsilon: 0.5,
                delta: 1.5,
                gamma1: 0.25,
                gamma2: 0.75,
                k_conf: 1.0,
            })
            .seed(Seed(6))
            .build(&g)
            .unwrap();
        let (r, _) = run.artifact.query(0, 63);
        let exact = run.artifact.query_exact(0, 63) as f64;
        assert!(r.distance >= exact && r.distance <= 2.0 * exact);
    }

    #[test]
    fn oracle_unweighted_mode_rejects_weighted_graphs() {
        let g = CsrGraph::from_edges(3, [psh_graph::Edge::new(0, 1, 7)]);
        let err = OracleBuilder::new()
            .mode(OracleMode::Unweighted)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PshError::RequiresUnitWeights { .. }));
    }

    #[test]
    fn oracle_flags_polynomial_weight_range_violations() {
        // ratio 10^12 over n = 3 vertices blows the n³ bound
        let g = CsrGraph::from_edges(
            3,
            [
                psh_graph::Edge::new(0, 1, 1),
                psh_graph::Edge::new(1, 2, 1_000_000_000_000),
            ],
        );
        let err = OracleBuilder::new().build(&g).unwrap_err();
        assert!(matches!(err, PshError::WeightRangeTooLarge { .. }));
        // explicit opt-out restores the legacy behaviour
        assert!(OracleBuilder::new()
            .allow_large_weights(true)
            .build(&g)
            .is_ok());
    }
}
