//! Spanner constructions (§3 of the paper).
//!
//! * [`unweighted`] — Algorithm 2: one exponential start time clustering
//!   with `β = ln n / 2k`, keep the cluster forest, and add one edge from
//!   every boundary vertex to each adjacent cluster. `O(k)` stretch,
//!   expected size `O(n^{1+1/k})` (Lemma 3.2). Built via
//!   [`crate::api::SpannerBuilder::unweighted`].
//! * [`well_separated::well_separated_spanner`] — Algorithm 3: on a graph
//!   whose edge-weight buckets are separated by factors `≥ poly(k)`,
//!   cluster each bucket's quotient graph `Γ_i = G[A_i]/H_{i−1}` and
//!   contract the forests as you go.
//! * [`weighted`] — Theorem 3.3: bucket edges by powers of two, split
//!   the buckets into `O(log k)` well-separated groups, and run
//!   Algorithm 3 on each group in parallel. Expected size
//!   `O(n^{1+1/k} log k)`. Built via
//!   [`crate::api::SpannerBuilder::weighted`].
//! * [`verify`] — exact stretch measurement against Dijkstra, the test and
//!   experiment oracle.

pub mod buckets;
pub mod unweighted;
pub mod verify;
pub mod weighted;
pub mod well_separated;

pub use well_separated::well_separated_spanner;

use psh_graph::{CsrGraph, Edge};

/// A spanner: a subset of the input graph's edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanner {
    /// Number of vertices of the spanned graph.
    pub n: usize,
    /// The spanner's edges — always canonical edges of the input graph.
    pub edges: Vec<Edge>,
}

impl Spanner {
    /// Create a spanner from an edge set, deduplicating.
    pub fn new(n: usize, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Spanner { n, edges }
    }

    /// Number of spanner edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Materialize the spanner as a graph (for distance queries).
    pub fn as_graph(&self) -> CsrGraph {
        CsrGraph::from_edges(self.n, self.edges.iter().copied())
    }

    /// Check that every spanner edge exists in `g` with the same weight.
    pub fn is_subgraph_of(&self, g: &CsrGraph) -> bool {
        self.edges
            .iter()
            .all(|e| g.neighbors(e.u).any(|(t, w)| t == e.v && w == e.w))
    }

    /// `size / n^{1+1/k}` — the constant factor in front of the paper's
    /// size bound, the quantity Figure 1 compares across algorithms.
    pub fn size_ratio(&self, k: f64) -> f64 {
        let bound = (self.n as f64).powf(1.0 + 1.0 / k);
        self.size() as f64 / bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanner_dedups_edges() {
        let e = Edge::new(0, 1, 2);
        let s = Spanner::new(3, vec![e, e, Edge::new(1, 2, 1)]);
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn subgraph_check_catches_foreign_edges() {
        let g = CsrGraph::from_edges(3, [Edge::new(0, 1, 2)]);
        let good = Spanner::new(3, vec![Edge::new(0, 1, 2)]);
        let bad_weight = Spanner::new(3, vec![Edge::new(0, 1, 3)]);
        let bad_edge = Spanner::new(3, vec![Edge::new(1, 2, 1)]);
        assert!(good.is_subgraph_of(&g));
        assert!(!bad_weight.is_subgraph_of(&g));
        assert!(!bad_edge.is_subgraph_of(&g));
    }

    #[test]
    fn size_ratio_normalizes() {
        let s = Spanner::new(100, (0..99).map(|i| Edge::new(i, i + 1, 1)).collect());
        // k → ∞ bound is n, so ratio ≈ 99/100^(1+eps) — just under 1
        assert!(s.size_ratio(1e9) < 1.0);
    }
}
