//! Edge bucketing by weight for the weighted spanner (§3).
//!
//! Edges are bucketed by powers of two, `E_b = { e : w(e) ∈ [2^b, 2^{b+1}) }`
//! (the paper's `E_i` with `w ∈ [2^{i−1}, 2^i)`, shifted to 0-based), then
//! the buckets are dealt round-robin into `stride = O(log k)` **groups**
//! `G_j = ⋃_{i≥0} E_{j + i·stride}`. Within a group, consecutive non-empty
//! buckets differ in weight by at least `2^{stride−1} ≥ 4k`, the
//! well-separation Algorithm 3 needs so that contracted pieces (diameter
//! `≤ w_i`) are negligible against the next level's weights.

use psh_graph::{GraphView, Weight};

/// Power-of-two bucket index of a weight (`w >= 1`).
#[inline]
pub fn bucket_index(w: Weight) -> u32 {
    debug_assert!(w >= 1);
    w.ilog2()
}

/// Group stride `ceil(log2(8k))`: guarantees the weight ratio between
/// consecutive buckets of a group is `≥ 8k / 2 = 4k`.
pub fn group_stride(k: f64) -> u32 {
    ((8.0 * k).log2().ceil() as u32).max(1)
}

/// Bucket the canonical edge ids of `g` by [`bucket_index`], ascending.
/// Returns `(bucket_index, eids)` pairs for non-empty buckets only.
pub fn bucket_edges<G: GraphView>(g: &G) -> Vec<(u32, Vec<u32>)> {
    let mut map: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for (eid, e) in g.edges().iter().enumerate() {
        map.entry(bucket_index(e.w)).or_default().push(eid as u32);
    }
    map.into_iter().collect()
}

/// Deal buckets into `stride` groups: group `j` gets buckets with index
/// `≡ j (mod stride)`, kept in ascending weight order. Empty groups are
/// dropped.
pub fn split_into_groups(buckets: Vec<(u32, Vec<u32>)>, stride: u32) -> Vec<Vec<(u32, Vec<u32>)>> {
    let mut groups: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); stride as usize];
    for (b, eids) in buckets {
        groups[(b % stride) as usize].push((b, eids));
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::CsrGraph;
    use psh_graph::Edge;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
    }

    #[test]
    fn stride_grows_logarithmically_in_k() {
        assert_eq!(group_stride(1.0), 3); // log2(8) = 3
        assert_eq!(group_stride(2.0), 4);
        assert_eq!(group_stride(16.0), 7);
        assert!(group_stride(1000.0) <= 13);
    }

    #[test]
    fn buckets_partition_edges() {
        let g = CsrGraph::from_edges(
            5,
            [
                Edge::new(0, 1, 1),
                Edge::new(1, 2, 3),
                Edge::new(2, 3, 3),
                Edge::new(3, 4, 100),
            ],
        );
        let buckets = bucket_edges(&g);
        let total: usize = buckets.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, g.m());
        assert_eq!(buckets[0].0, 0); // weight 1
        assert_eq!(buckets[1].0, 1); // weights 3, 3
        assert_eq!(buckets[1].1.len(), 2);
        assert_eq!(buckets[2].0, 6); // weight 100 → bucket 6
    }

    #[test]
    fn groups_are_well_separated() {
        let buckets: Vec<(u32, Vec<u32>)> = (0..12).map(|b| (b, vec![b])).collect();
        let stride = 4;
        let groups = split_into_groups(buckets, stride);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            for pair in g.windows(2) {
                assert!(
                    pair[1].0 - pair[0].0 >= stride,
                    "buckets too close in a group"
                );
            }
        }
    }

    #[test]
    fn empty_groups_are_dropped() {
        let buckets = vec![(0u32, vec![0u32]), (8, vec![1])];
        let groups = split_into_groups(buckets, 4);
        assert_eq!(groups.len(), 1, "both buckets land in group 0");
        assert_eq!(groups[0].len(), 2);
    }
}
