//! Algorithm 3 — spanner construction on graphs with well-separated edge
//! weight buckets.
//!
//! ```text
//! WellSeparatedSpanner(G):
//!   1. Relabel the buckets A_1 … A_s ascending, edges of A_i in
//!      [w_i, 2 w_i), with w_{i+1}/w_i ≥ O(k).
//!   2. H_0 = ∅, S = ∅.
//!   3. for i = 1 to s:
//!   4.   Γ_i = G[A_i] / H_{i−1}   (uniform weights)
//!   5.   ESTCluster(Γ_i, β = ln n / 2k)
//!   6.   F = forest produced
//!   7.   S = S ∪ F;  H_i = H_{i−1} ∪ F
//!   8.   add one boundary edge per (boundary vertex, adjacent cluster) to S
//!   9. return S
//! ```
//!
//! The contraction `H_{i−1}` is maintained as a union-find over the
//! *original* vertex set: a cluster formed at level `i` has diameter
//! `O(k · 2^{b_i+1})` w.h.p., which well-separation makes negligible
//! against level `i+1` weights — so contracted vertices behave like points
//! (the stretch loses only the factor 2 the proof of Theorem 3.3 budgets).
//!
//! Every edge added to `S` is an **original** graph edge, recovered through
//! the quotient graph's provenance.

use super::unweighted::{beta_for, select_spanner_eids_with};
use psh_cluster::ClusterBuilder;
use psh_exec::Executor;
use psh_graph::union_find::UnionFind;
use psh_graph::{CsrGraph, Edge, GraphView};
use psh_pram::Cost;
use rand::Rng;

/// Run Algorithm 3 over explicit weight levels.
///
/// `levels` lists, in ascending weight order, the canonical edge ids of
/// each bucket `A_i` of `g`; the caller (Theorem 3.3's driver) guarantees
/// well-separation. Returns the selected original edges and the cost. The
/// clustering parameter uses the *global* `n` of `g`, matching the paper's
/// `β = ln n / 2k`.
pub fn well_separated_spanner<G: GraphView, R: Rng>(
    g: &G,
    levels: &[Vec<u32>],
    k: f64,
    rng: &mut R,
) -> (Vec<Edge>, Cost) {
    well_separated_spanner_with(&Executor::current(), g, levels, k, rng)
}

/// [`well_separated_spanner`] on an explicit executor. The `for i = 1..s`
/// level loop is inherently sequential (each level contracts the last);
/// the clustering and boundary selection inside each level run on the
/// executor's pool.
pub fn well_separated_spanner_with<G: GraphView, R: Rng>(
    exec: &Executor,
    g: &G,
    levels: &[Vec<u32>],
    k: f64,
    rng: &mut R,
) -> (Vec<Edge>, Cost) {
    assert!(k >= 1.0, "stretch parameter k must be >= 1");
    let beta = beta_for(g.n(), k);
    let mut contraction = UnionFind::new(g.n());
    let mut selected: Vec<Edge> = Vec::new();
    let mut cost = Cost::ZERO;

    for eids in levels {
        if eids.is_empty() {
            continue;
        }
        // --- Build Γ_i = G[A_i]/H_{i-1} with provenance -----------------
        // Map endpoints to contraction components; drop edges inside one
        // component (their stretch is certified by the contracted piece).
        let mut level_edges: Vec<(u32, u32, u32)> = Vec::with_capacity(eids.len());
        for &eid in eids {
            let e = g.edge(eid);
            let (cu, cv) = (contraction.find(e.u), contraction.find(e.v));
            if cu != cv {
                let (a, b) = if cu < cv { (cu, cv) } else { (cv, cu) };
                level_edges.push((a, b, eid));
            }
        }
        cost = cost.then(Cost::flat(eids.len() as u64));
        if level_edges.is_empty() {
            continue;
        }
        // Compact the touched component ids into 0..t.
        let mut comps: Vec<u32> = level_edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        comps.sort_unstable();
        comps.dedup();
        let local_of = |c: u32| comps.binary_search(&c).unwrap() as u32;
        // Dedup parallel edges per component pair, keeping the smallest
        // original eid (deterministic representative).
        level_edges.sort_unstable();
        level_edges.dedup_by_key(|&mut (a, b, _)| (a, b));
        let provenance: Vec<u32> = level_edges.iter().map(|&(_, _, eid)| eid).collect();
        let local_graph = CsrGraph::from_edges(
            comps.len(),
            level_edges
                .iter()
                .map(|&(a, b, _)| Edge::new(local_of(a), local_of(b), 1)),
        );
        // from_edges sorts canonically; our input is already sorted by
        // (a, b) with unique pairs, so canonical order matches provenance.
        debug_assert_eq!(local_graph.m(), provenance.len());

        // --- Cluster Γ_i and select spanner edges ------------------------
        let (clustering, c_cost) = ClusterBuilder::new(beta)
            .build_with_rng_on(exec, &local_graph, rng)
            .expect("beta_for yields positive finite betas");
        let (local_eids, s_cost) = select_spanner_eids_with(exec, &local_graph, &clustering);
        selected.extend(
            local_eids
                .iter()
                .map(|&leid| g.edge(provenance[leid as usize])),
        );
        cost = cost.then(c_cost).then(s_cost);

        // --- Contract the clusters into H_i ------------------------------
        // Every vertex merges with its cluster center; since the cluster
        // forest spans the cluster, this equals H_{i-1} ∪ F.
        for v in 0..local_graph.n() as u32 {
            let cen = clustering.center[v as usize];
            if cen != v {
                contraction.union(comps[v as usize], comps[cen as usize]);
            }
        }
        cost = cost.then(Cost::flat(local_graph.n() as u64));
    }

    selected.sort_unstable();
    selected.dedup();
    (selected, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanner::verify::max_stretch_exact;
    use crate::spanner::Spanner;
    use psh_graph::connectivity::components_union_find;
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a graph whose weights come in well-separated tiers and the
    /// matching level lists.
    fn tiered_graph(seed: u64, tiers: &[u64]) -> (CsrGraph, Vec<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::connected_random(120, 240, &mut rng);
        use rand::Rng;
        let edges: Vec<Edge> = base
            .edges()
            .iter()
            .map(|e| {
                let t = rng.random_range(0..tiers.len());
                Edge::new(e.u, e.v, tiers[t])
            })
            .collect();
        let g = CsrGraph::from_edges(base.n(), edges);
        let levels: Vec<Vec<u32>> = tiers
            .iter()
            .map(|&t| {
                g.edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.w == t)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        (g, levels)
    }

    #[test]
    fn output_is_subgraph_and_connected() {
        let (g, levels) = tiered_graph(1, &[1, 64, 4096]);
        let mut rng = StdRng::seed_from_u64(2);
        let (edges, _) = well_separated_spanner(&g, &levels, 2.0, &mut rng);
        let s = Spanner::new(g.n(), edges);
        assert!(s.is_subgraph_of(&g));
        let (c, _) = components_union_find(&s.as_graph());
        let (cg, _) = components_union_find(&g);
        assert_eq!(c.count, cg.count, "spanner must preserve connectivity");
    }

    #[test]
    fn stretch_bounded_on_tiered_graphs() {
        for seed in 0..4u64 {
            let (g, levels) = tiered_graph(seed, &[1, 64, 4096]);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let k = 2.0;
            let (edges, _) = well_separated_spanner(&g, &levels, k, &mut rng);
            let s = Spanner::new(g.n(), edges);
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch <= 16.0 * k + 4.0,
                "seed {seed}: stretch {stretch} too large"
            );
        }
    }

    #[test]
    fn contraction_shrinks_later_levels() {
        // With a very coarse k, level-1 clusters swallow most vertices, so
        // the level-2 quotient should be much smaller than n. We observe
        // this indirectly: total selected edges stay near-linear.
        let (g, levels) = tiered_graph(7, &[1, 1 << 10, 1 << 20]);
        let mut rng = StdRng::seed_from_u64(8);
        let (edges, _) = well_separated_spanner(&g, &levels, 4.0, &mut rng);
        assert!(
            edges.len() <= 2 * g.n(),
            "selected {} edges on n={} — contraction failed?",
            edges.len(),
            g.n()
        );
    }

    #[test]
    fn single_level_matches_unweighted_behaviour() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::connected_random(100, 300, &mut rng);
        let levels = vec![(0..g.m() as u32).collect::<Vec<_>>()];
        let (edges, _) = well_separated_spanner(&g, &levels, 2.0, &mut StdRng::seed_from_u64(4));
        let s = Spanner::new(g.n(), edges);
        assert!(s.is_subgraph_of(&g));
        assert!(max_stretch_exact(&g, &s) <= 18.0);
    }

    #[test]
    fn empty_levels_are_skipped() {
        let (g, levels) = tiered_graph(5, &[1, 64]);
        let padded = vec![Vec::new(), levels[0].clone(), Vec::new(), levels[1].clone()];
        let mut rng = StdRng::seed_from_u64(6);
        let (edges, _) = well_separated_spanner(&g, &padded, 2.0, &mut rng);
        assert!(!edges.is_empty());
    }
}
