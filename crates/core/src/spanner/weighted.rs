//! Theorem 3.3 — the full weighted spanner pipeline.
//!
//! 1. Bucket edges by powers of two ([`super::buckets`]).
//! 2. Deal the buckets into `O(log k)` groups so buckets within a group
//!    are weight-separated by `≥ 4k`.
//! 3. Run Algorithm 3 ([`super::well_separated`]) on every group — the
//!    paper runs them "in parallel", so the groups' costs compose with
//!    [`Cost::par`] — and take the union.
//!
//! Result (Theorem 3.3): an `O(k)`-spanner of expected size
//! `O(n^{1+1/k} log k)` in `O(m)` work and `O(k log* n log U)` depth.

use super::buckets::{bucket_edges, group_stride, split_into_groups};
use super::well_separated::well_separated_spanner_with;
use super::Spanner;
use psh_exec::Executor;
use psh_graph::{Edge, GraphView};
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem 3.3's pipeline body — parameter validation happens in the
/// builder ([`SpannerBuilder::weighted`]) before this runs.
pub(crate) fn weighted_spanner_impl<G: GraphView, R: Rng>(
    exec: &Executor,
    g: &G,
    k: f64,
    rng: &mut R,
) -> (Spanner, Cost) {
    let n = g.n();
    if n <= 1 || g.m() == 0 {
        return (Spanner::new(n, Vec::new()), Cost::ZERO);
    }
    let stride = group_stride(k);
    let buckets = bucket_edges(g);
    let groups = split_into_groups(buckets, stride);
    // Independent seeds per group, drawn in deterministic group order, so
    // the groups really do run in parallel (the paper's schedule) while
    // producing the same edges as a sequential sweep.
    let tasks: Vec<(usize, u64)> = (0..groups.len()).map(|i| (i, rng.random())).collect();
    let results: Vec<(Vec<Edge>, Cost)> = exec.par_map(&tasks, 1, |&(i, seed)| {
        let levels: Vec<Vec<u32>> = groups[i].iter().map(|(_, eids)| eids.clone()).collect();
        let mut group_rng = StdRng::seed_from_u64(seed);
        well_separated_spanner_with(exec, g, &levels, k, &mut group_rng)
    });
    // Groups run in parallel: work adds, depth maxes.
    let cost = Cost::par_all(results.iter().map(|(_, c)| *c)).then(Cost::flat(g.m() as u64));
    let edges: Vec<Edge> = results.into_iter().flat_map(|(e, _)| e).collect();
    (Spanner::new(n, edges), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SpannerBuilder;
    use crate::spanner::verify::max_stretch_exact;
    use psh_graph::connectivity::components_union_find;
    use psh_graph::generators;
    use psh_graph::CsrGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Test shim matching the old free-function signature, now routed
    /// through the builder's RNG spine.
    fn weighted_spanner<R: Rng>(g: &CsrGraph, k: f64, rng: &mut R) -> (Spanner, Cost) {
        SpannerBuilder::weighted(k)
            .build_with_rng(g, rng)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn weighted_instance(seed: u64, ratio: f64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::connected_random(150, 350, &mut rng);
        generators::with_log_uniform_weights(&base, ratio, &mut rng)
    }

    #[test]
    fn spanner_is_subgraph_and_preserves_connectivity() {
        let g = weighted_instance(1, 4096.0);
        let mut rng = StdRng::seed_from_u64(2);
        let (s, _) = weighted_spanner(&g, 3.0, &mut rng);
        assert!(s.is_subgraph_of(&g));
        let (c, _) = components_union_find(&s.as_graph());
        assert_eq!(c.count, 1);
    }

    #[test]
    fn stretch_bounded_across_weight_ratios() {
        for (seed, ratio) in [(3u64, 16.0), (4, 1024.0), (5, 65536.0)] {
            let g = weighted_instance(seed, ratio);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let k = 2.0;
            let (s, _) = weighted_spanner(&g, k, &mut rng);
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch.is_finite() && stretch <= 16.0 * k + 4.0,
                "ratio {ratio}: stretch {stretch}"
            );
        }
    }

    #[test]
    fn unit_weight_graphs_degenerate_to_a_single_group() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::connected_random(200, 500, &mut rng);
        let (s, _) = weighted_spanner(&g, 2.0, &mut rng);
        assert!(s.is_subgraph_of(&g));
        assert!(max_stretch_exact(&g, &s) <= 20.0);
    }

    #[test]
    fn size_stays_near_linear_on_dense_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = generators::erdos_renyi(300, 8000, &mut rng);
        let g = generators::with_log_uniform_weights(&base, 4096.0, &mut rng);
        let (s, _) = weighted_spanner(&g, 4.0, &mut rng);
        // n^{1+1/4}·log k ≈ 300^1.25 · 2 ≈ 2500; allow constant slack
        assert!(
            s.size() < g.m() / 2,
            "spanner size {} vs m {} — no sparsification?",
            s.size(),
            g.m()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = weighted_instance(8, 256.0);
        let (a, _) = weighted_spanner(&g, 3.0, &mut StdRng::seed_from_u64(42));
        let (b, _) = weighted_spanner(&g, 3.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = CsrGraph::from_edges(4, std::iter::empty());
        let (s, _) = weighted_spanner(&g, 2.0, &mut rng);
        assert_eq!(s.size(), 0);
    }
}
