//! Algorithm 2 — spanner construction for unweighted graphs.
//!
//! ```text
//! UnweightedSpanner(G, k):
//!   1. Compute an exponential start time clustering with β = ln n / 2k;
//!      let H be the forest produced.
//!   2. From each boundary vertex, add to H one edge connecting to each
//!      adjacent cluster.
//!   3. Return H.
//! ```
//!
//! Lemma 3.2: the result is an `O(k)`-spanner w.h.p. of expected size
//! `O(n^{1+1/k})`, computed in `O(k log* n)` depth and `O(m)` work. The
//! intuition: intra-cluster edges are certified by the cluster tree
//! (diameter `O(k)` w.h.p. since `β = ln n / 2k`); an inter-cluster edge
//! `(u, v)` is certified by *some* kept edge between the two clusters plus
//! the two tree paths. Corollary 3.1 bounds the expected number of kept
//! edges per vertex by `n^{1/k}`.

use super::Spanner;
use psh_cluster::Clustering;
use psh_exec::Executor;
use psh_graph::{Edge, GraphView, VertexId};
use psh_pram::Cost;

/// Vertices per parallel chunk when scanning adjacencies for boundary
/// edges (each item's work is one adjacency scan).
const SELECT_GRAIN: usize = 512;

/// The paper's choice `β = ln n / 2k`.
pub fn beta_for(n: usize, k: f64) -> f64 {
    ((n.max(2)) as f64).ln() / (2.0 * k)
}

/// Steps 2–3 of Algorithm 2 at the canonical-edge-id level: the forest
/// edge ids plus, for each boundary vertex, the id of one edge into every
/// adjacent cluster. Algorithm 3 needs ids (not edges) so it can map
/// quotient-graph selections back to original-graph edges via provenance.
///
/// Selected inter-cluster edges are deterministic: for each vertex and each
/// adjacent cluster, the smallest canonical edge id wins.
pub fn select_spanner_eids<G: GraphView>(g: &G, c: &Clustering) -> (Vec<u32>, Cost) {
    select_spanner_eids_with(&Executor::current(), g, c)
}

/// [`select_spanner_eids`] on an explicit executor. The per-vertex scans
/// run chunked on the pool with a reused per-chunk scratch buffer; outputs
/// are concatenated in vertex order, so the selection is byte-identical
/// for any [`psh_exec::ExecutionPolicy`].
pub fn select_spanner_eids_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    c: &Clustering,
) -> (Vec<u32>, Cost) {
    let verts: Vec<VertexId> = (0..g.n() as u32).collect();
    // Forest edges: locate the canonical id of each (v, parent) tree edge.
    let forest: Vec<u32> = exec.par_flat_map(&verts, SELECT_GRAIN, |&v, out| {
        let p = c.parent[v as usize];
        if p == v {
            return;
        }
        let eid = g
            .neighbors_with_eid(v)
            .find(|&(t, _, _)| t == p)
            .map(|(_, _, eid)| eid)
            .expect("tree parent must be a graph neighbor");
        out.push(eid);
    });
    // One edge per (boundary vertex, adjacent cluster): scan each vertex's
    // adjacency, keep the min-eid edge into every foreign cluster. The
    // (foreign cluster, eid) scratch is chunk-local and reused per vertex.
    let picked_parts: Vec<Vec<u32>> = exec.par_map_chunks(&verts, SELECT_GRAIN, |chunk| {
        let mut out: Vec<u32> = Vec::new();
        let mut locals: Vec<(u32, u32)> = Vec::new();
        for &v in chunk {
            let mine = c.cluster_id[v as usize];
            locals.clear();
            locals.extend(g.neighbors_with_eid(v).filter_map(|(t, _, eid)| {
                let ct = c.cluster_id[t as usize];
                (ct != mine).then_some((ct, eid))
            }));
            locals.sort_unstable();
            locals.dedup_by_key(|&mut (ct, _)| ct);
            out.extend(locals.iter().map(|&(_, eid)| eid));
        }
        out
    });
    let mut eids = forest;
    eids.extend(picked_parts.into_iter().flatten());
    exec.par_sort_unstable(&mut eids);
    eids.dedup();
    let cost = Cost::new(2 * g.m() as u64 + g.n() as u64, 2);
    (eids, cost)
}

/// Steps 2–3 of Algorithm 2 as a [`Spanner`] over `g`'s own edges.
pub fn spanner_from_clustering<G: GraphView>(g: &G, c: &Clustering) -> (Spanner, Cost) {
    spanner_from_clustering_with(&Executor::current(), g, c)
}

/// [`spanner_from_clustering`] on an explicit executor.
pub fn spanner_from_clustering_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    c: &Clustering,
) -> (Spanner, Cost) {
    let (eids, cost) = select_spanner_eids_with(exec, g, c);
    let edges: Vec<Edge> = eids.iter().map(|&eid| g.edge(eid)).collect();
    (Spanner::new(g.n(), edges), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SpannerBuilder;
    use crate::spanner::verify::max_stretch_exact;
    use psh_graph::connectivity::components_union_find;
    use psh_graph::generators;
    use psh_graph::CsrGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Test shim matching the old free-function signature, now routed
    /// through the builder's RNG spine.
    fn unweighted_spanner<R: Rng>(g: &CsrGraph, k: f64, rng: &mut R) -> (Spanner, Cost) {
        SpannerBuilder::unweighted(k)
            .build_with_rng(g, rng)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn spanner_is_a_subgraph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::connected_random(200, 400, &mut rng);
        let (s, _) = unweighted_spanner(&g, 3.0, &mut rng);
        assert!(s.is_subgraph_of(&g));
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::connected_random(300, 900, &mut rng);
        let (s, _) = unweighted_spanner(&g, 2.0, &mut rng);
        let (comp, _) = components_union_find(&s.as_graph());
        assert_eq!(comp.count, 1, "spanner must stay connected");
    }

    #[test]
    fn stretch_is_bounded_by_o_of_k() {
        // Lemma 3.2 promises O(k); the hidden constant via tree diameters
        // is ~4 (two tree paths of radius 2k·c each, plus the crossing
        // edge). We assert max stretch <= 8k + 2 on a batch of graphs.
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_random(120, 400, &mut rng);
            let k = 2.0;
            let (s, _) = unweighted_spanner(&g, k, &mut rng);
            let stretch = max_stretch_exact(&g, &s);
            assert!(
                stretch <= 8.0 * k + 2.0,
                "seed {seed}: stretch {stretch} exceeds 8k+2"
            );
        }
    }

    #[test]
    fn size_shrinks_as_k_grows() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(400, 4000, &mut rng);
        let (s2, _) = unweighted_spanner(&g, 2.0, &mut StdRng::seed_from_u64(10));
        let (s8, _) = unweighted_spanner(&g, 8.0, &mut StdRng::seed_from_u64(10));
        assert!(
            s8.size() < s2.size(),
            "larger k must sparsify more: k=8 gave {}, k=2 gave {}",
            s8.size(),
            s2.size()
        );
        // both are far below m on a dense graph
        assert!(s8.size() < g.m());
    }

    #[test]
    fn work_is_linear_in_m() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::erdos_renyi(500, 5000, &mut rng);
        let (_, cost) = unweighted_spanner(&g, 3.0, &mut rng);
        // generous constant: clustering + selection touch each edge O(1) times
        assert!(
            cost.work < 40 * (g.m() as u64 + g.n() as u64),
            "work {} should be linear in m",
            cost.work
        );
    }

    #[test]
    fn trivial_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = CsrGraph::from_edges(1, std::iter::empty());
        let (s, _) = unweighted_spanner(&g, 2.0, &mut rng);
        assert_eq!(s.size(), 0);
        let g = CsrGraph::from_edges(5, std::iter::empty());
        let (s, _) = unweighted_spanner(&g, 2.0, &mut rng);
        assert_eq!(s.size(), 0);
    }

    #[test]
    fn tree_input_returns_whole_tree() {
        // a tree is its own unique spanner: every edge is a bridge
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::random_tree(100, &mut rng);
        let (s, _) = unweighted_spanner(&g, 2.0, &mut rng);
        assert_eq!(s.size(), g.m(), "all bridges must be kept");
    }

    #[test]
    #[should_panic(expected = "requires unit weights")]
    fn rejects_weighted_input() {
        let g = CsrGraph::from_edges(3, [Edge::new(0, 1, 5)]);
        let _ = unweighted_spanner(&g, 2.0, &mut StdRng::seed_from_u64(7));
    }
}
