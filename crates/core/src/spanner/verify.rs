//! Stretch verification — the exact oracle behind every spanner claim.
//!
//! A subgraph `H` is a `t`-spanner iff `dist_H(u, v) ≤ t · dist_G(u, v)`
//! for every **edge** `(u, v)` of `G` (§2.2: "it is sufficient to prove the
//! stretch bound for endpoints of every edge" — any path distorts by at
//! most the max edge distortion). So verification computes, for every edge
//! (or a sample), `dist_H(u, v) / w(u, v)`.

use super::Spanner;
use psh_graph::traversal::dijkstra::dijkstra;
use psh_graph::{CsrGraph, INF};
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

/// Maximum stretch over **all** edges of `g` (exact; one Dijkstra in the
/// spanner per distinct edge source, so use on small/medium graphs).
///
/// Returns `f64::INFINITY` if some edge's endpoints are disconnected in the
/// spanner.
pub fn max_stretch_exact(g: &CsrGraph, s: &Spanner) -> f64 {
    let h = s.as_graph();
    let mut sources: Vec<u32> = g.edges().iter().map(|e| e.u).collect();
    sources.sort_unstable();
    sources.dedup();
    let stretches: Vec<f64> = sources
        .par_iter()
        .map(|&u| {
            let dist = dijkstra(&h, u);
            g.edges()
                .iter()
                .filter(|e| e.u == u)
                .map(|e| {
                    let d = dist.dist[e.v as usize];
                    if d == INF {
                        f64::INFINITY
                    } else {
                        d as f64 / e.w as f64
                    }
                })
                .fold(0.0, f64::max)
        })
        .collect();
    stretches.into_iter().fold(0.0, f64::max)
}

/// Stretch statistics over a random sample of `sample_size` edges:
/// `(max, mean)`. Suitable for large graphs in the experiment harness.
pub fn stretch_sampled<R: Rng>(
    g: &CsrGraph,
    s: &Spanner,
    sample_size: usize,
    rng: &mut R,
) -> (f64, f64) {
    if g.m() == 0 {
        return (1.0, 1.0);
    }
    let h = s.as_graph();
    let mut eids: Vec<u32> = (0..g.m() as u32).collect();
    eids.shuffle(rng);
    eids.truncate(sample_size.max(1));
    // group by source to share Dijkstra runs
    let mut edges: Vec<_> = eids.iter().map(|&i| g.edge(i)).collect();
    edges.sort_unstable();
    let mut per_edge: Vec<f64> = Vec::with_capacity(edges.len());
    let mut i = 0;
    while i < edges.len() {
        let u = edges[i].u;
        let dist = dijkstra(&h, u);
        while i < edges.len() && edges[i].u == u {
            let e = edges[i];
            let d = dist.dist[e.v as usize];
            per_edge.push(if d == INF {
                f64::INFINITY
            } else {
                d as f64 / e.w as f64
            });
            i += 1;
        }
    }
    let max = per_edge.iter().copied().fold(0.0, f64::max);
    let mean = per_edge.iter().sum::<f64>() / per_edge.len() as f64;
    (max, mean)
}

/// Assert (in tests/experiments) that `s` is a `bound`-spanner of `g`.
pub fn verify_stretch(g: &CsrGraph, s: &Spanner, bound: f64) -> Result<(), String> {
    if !s.is_subgraph_of(g) {
        return Err("spanner contains edges not in the graph".into());
    }
    let got = max_stretch_exact(g, s);
    if got <= bound {
        Ok(())
    } else {
        Err(format!("stretch {got} exceeds bound {bound}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn whole_graph_has_stretch_one() {
        let g = generators::grid(5, 5);
        let s = Spanner::new(g.n(), g.edges().to_vec());
        assert_eq!(max_stretch_exact(&g, &s), 1.0);
        verify_stretch(&g, &s, 1.0).unwrap();
    }

    #[test]
    fn cycle_minus_edge_stretches_by_n_minus_1() {
        let g = generators::cycle(8);
        // drop the edge (7, 0): its endpoints are now 7 apart in the spanner
        let edges: Vec<Edge> = g
            .edges()
            .iter()
            .copied()
            .filter(|e| !(e.u == 0 && e.v == 7))
            .collect();
        let s = Spanner::new(8, edges);
        assert_eq!(max_stretch_exact(&g, &s), 7.0);
    }

    #[test]
    fn disconnection_reported_as_infinite() {
        let g = generators::path(4);
        let s = Spanner::new(4, vec![Edge::new(0, 1, 1)]);
        assert!(max_stretch_exact(&g, &s).is_infinite());
        assert!(verify_stretch(&g, &s, 100.0).is_err());
    }

    #[test]
    fn sampled_stretch_bounded_by_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::connected_random(80, 200, &mut rng);
        // spanner: drop ~half the non-tree edges deterministically
        let keep: Vec<Edge> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0 || *i < 79)
            .map(|(_, e)| *e)
            .collect();
        let s = Spanner::new(g.n(), keep);
        let exact = max_stretch_exact(&g, &s);
        let (smax, smean) = stretch_sampled(&g, &s, 50, &mut rng);
        assert!(smax <= exact + 1e-9);
        assert!(smean <= smax + 1e-9);
    }

    #[test]
    fn weighted_stretch_uses_weights() {
        // triangle with one heavy edge; dropping it gives stretch 2/10 path
        let g = CsrGraph::from_edges(
            3,
            [Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 2, 10)],
        );
        let s = Spanner::new(3, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        // dist_H(0,2) = 2, w = 10 → stretch 0.2 for that edge; max over all = 1
        assert_eq!(max_stretch_exact(&g, &s), 1.0);
    }
}
