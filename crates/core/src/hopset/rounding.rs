//! Lemma 5.2 — the Klein–Subramanian rounding scheme.
//!
//! To search for a path of at most `k` edges and weight in `[d, c·d]`
//! without paying depth proportional to `d`, round weights to the grid
//! `ŵ = ζ·d/k`:
//!
//! ```text
//! w̃(e) = ⌈ w(e) / ŵ ⌉
//! ```
//!
//! Lemma 5.2: any such path then has rounded weight `w̃(p) ≤ ⌈ck/ζ⌉` — so
//! the weighted parallel BFS only runs `O(ck/ζ)` levels — while the
//! rounded-back value never exceeds `(1+ζ)·w(p)` (each of the ≤ k edges
//! gains at most `ŵ = ζd/k`, totalling `≤ ζd ≤ ζ·w(p)`).
//!
//! Rounding up means the grid value `ŵ·w̃(p)` also never *undershoots* the
//! true weight — the property that makes the multi-estimate oracle of §5
//! sound (taking a min over estimate bands cannot return less than the
//! true distance).

use psh_graph::{CsrGraph, Edge, Weight};

/// A rounding of a graph's weights to the grid `ŵ`.
#[derive(Clone, Debug)]
pub struct Rounding {
    /// The grid granularity `ŵ` (≥ 1; weights are already integers, so a
    /// finer grid would be a no-op).
    pub what: f64,
}

impl Rounding {
    /// The scheme for paths of ≤ `k_hops` edges and weight ≈ `d`, with
    /// distortion budget `ζ`.
    pub fn for_band(d: u64, k_hops: u64, zeta: f64) -> Rounding {
        assert!(zeta > 0.0 && zeta < 1.0, "zeta must be in (0,1)");
        assert!(k_hops >= 1);
        let what = (zeta * d as f64 / k_hops as f64).max(1.0);
        Rounding { what }
    }

    /// Round one weight: `⌈w/ŵ⌉` (always ≥ 1).
    #[inline]
    pub fn round_weight(&self, w: Weight) -> Weight {
        ((w as f64 / self.what).ceil() as u64).max(1)
    }

    /// Map a rounded-scale distance back to the original scale.
    /// Monotone and never below the true weight it represents.
    #[inline]
    pub fn unround(&self, rounded: Weight) -> f64 {
        rounded as f64 * self.what
    }

    /// Rounded copy of a graph.
    pub fn round_graph(&self, g: &CsrGraph) -> CsrGraph {
        CsrGraph::from_edges(
            g.n(),
            g.edges()
                .iter()
                .map(|e| Edge::new(e.u, e.v, self.round_weight(e.w))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_grid_when_band_is_small() {
        // ζd/k < 1 → grid clamps to 1 → integer weights unchanged
        let r = Rounding::for_band(10, 100, 0.5);
        assert_eq!(r.what, 1.0);
        assert_eq!(r.round_weight(7), 7);
        assert_eq!(r.unround(7), 7.0);
    }

    #[test]
    fn rounding_never_undershoots() {
        let r = Rounding::for_band(1_000_000, 100, 0.25);
        for w in [1u64, 17, 999, 123_456] {
            let back = r.unround(r.round_weight(w));
            assert!(back >= w as f64, "w={w} came back as {back}");
            // and overshoots by at most one grid cell
            assert!(back <= w as f64 + r.what);
        }
    }

    #[test]
    fn lemma_5_2_path_weight_bound() {
        // a synthetic path: k edges, weights summing into [d, c·d]
        let k = 50u64;
        let d = 10_000u64;
        let c = 4.0;
        let zeta = 0.5;
        let r = Rounding::for_band(d, k, zeta);
        // worst case: all weights tiny (max relative inflation)
        let weights: Vec<u64> = (0..k).map(|i| d / k + (i % 3)).collect();
        let w_p: u64 = weights.iter().sum();
        assert!(w_p >= d && (w_p as f64) <= c * d as f64);
        let rounded: u64 = weights.iter().map(|&w| r.round_weight(w)).sum();
        // bound 1: rounded path weight ≤ ⌈ck/ζ⌉ (+k slack for per-edge ceils)
        assert!(
            rounded <= ((c * k as f64 / zeta).ceil() as u64) + k,
            "rounded weight {rounded} too large"
        );
        // bound 2: value distortion ≤ (1+ζ)
        let back = r.unround(rounded);
        assert!(
            back <= (1.0 + zeta) * w_p as f64,
            "distortion {} exceeds 1+ζ",
            back / w_p as f64
        );
    }

    #[test]
    fn rounded_graph_preserves_structure() {
        let g = psh_graph::generators::with_uniform_weights(
            &psh_graph::generators::grid(5, 5),
            100,
            1000,
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let r = Rounding::for_band(5_000, 10, 0.25);
        let rg = r.round_graph(&g);
        assert_eq!(rg.n(), g.n());
        assert_eq!(rg.m(), g.m());
        for (e, re) in g.edges().iter().zip(rg.edges()) {
            assert_eq!((e.u, e.v), (re.u, re.v));
            assert_eq!(re.w, r.round_weight(e.w));
        }
    }

    use rand::SeedableRng;

    proptest! {
        /// ŵ·⌈w/ŵ⌉ ∈ [w, w + ŵ] for arbitrary weights and bands.
        #[test]
        fn prop_round_trip_sandwich(w in 1u64..1_000_000, d in 1u64..1_000_000,
                                    k in 1u64..1000) {
            let r = Rounding::for_band(d, k, 0.3);
            let back = r.unround(r.round_weight(w));
            prop_assert!(back >= w as f64);
            prop_assert!(back <= w as f64 + r.what + 1e-6);
        }
    }
}
