//! Hopset construction parameters (Theorem 4.4's knobs).
//!
//! Algorithm 4 is governed by:
//!
//! * `ε` — per-level distortion budget; final distortion is
//!   `O(ε · log_ρ n)` (Lemma 4.2), so callers targeting a fixed overall
//!   error divide by `log n` as the paper does in Corollary 4.5.
//! * `δ > 1` — the small-cluster threshold exponent: a cluster is *small*
//!   when it has fewer than `|V|/ρ` vertices with
//!   `ρ = (k·log n / ε)^δ` — clusters must shrink faster than β grows for
//!   the recursion to terminate with most of the path intact.
//! * `γ₁` — base-case size `n_final = n^{γ₁}`.
//! * `γ₂` — top-level decomposition parameter `β₀ = n^{−γ₂}`.
//! * `k_conf` — the confidence constant of Lemma 2.1 (`k` in
//!   `kβ⁻¹ log n` diameter bounds).
//!
//! Claim 4.1: at recursion level `i`, `β_i = (k·log n/ε)^i · β₀`.
//! Lemma 4.2's hop bound: `h = n^{1/δ} · n_final^{1−1/δ} · β₀ · d`.

/// Parameters for Algorithm 4 (and its weighted variant).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopsetParams {
    /// Per-level distortion `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Small-cluster threshold exponent `δ > 1`.
    pub delta: f64,
    /// Base-case exponent: recursion stops below `n^{γ₁}` vertices.
    pub gamma1: f64,
    /// Top-level exponent: `β₀ = n^{−γ₂}`.
    pub gamma2: f64,
    /// Lemma 2.1 confidence constant (`k ≥ 1`).
    pub k_conf: f64,
}

impl Default for HopsetParams {
    /// The concrete setting the paper suggests after Theorem 4.4:
    /// `δ = 1.1`, `γ₂ = 0.96`, `γ₁` small, and a constant ε.
    fn default() -> Self {
        HopsetParams {
            epsilon: 0.25,
            delta: 1.1,
            gamma1: 0.3,
            gamma2: 0.96,
            k_conf: 1.0,
        }
    }
}

impl HopsetParams {
    /// Validate the theorem's constraints: `ε ∈ (0,1)`, `δ > 1`,
    /// `0 < γ₁ < γ₂ < 1`, `k_conf ≥ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(format!("epsilon must be in (0,1), got {}", self.epsilon));
        }
        if self.delta <= 1.0 {
            return Err(format!("delta must exceed 1, got {}", self.delta));
        }
        if !(0.0 < self.gamma1 && self.gamma1 < self.gamma2 && self.gamma2 < 1.0) {
            return Err(format!(
                "need 0 < γ1 < γ2 < 1, got γ1={} γ2={}",
                self.gamma1, self.gamma2
            ));
        }
        if self.k_conf < 1.0 {
            return Err(format!("k_conf must be >= 1, got {}", self.k_conf));
        }
        Ok(())
    }

    /// Top-level `β₀ = n^{−γ₂}`.
    pub fn beta0(&self, n: usize) -> f64 {
        (n.max(2) as f64).powf(-self.gamma2)
    }

    /// §5's weighted top level: `β₀ = (n/ε)^{−γ₂}`.
    pub fn beta0_weighted(&self, n: usize) -> f64 {
        (n.max(2) as f64 / self.epsilon).powf(-self.gamma2)
    }

    /// Per-level β multiplier `k·ln n / ε` (floored at 2 so β always
    /// grows — Claim 4.1's geometric increase).
    pub fn growth(&self, n: usize) -> f64 {
        (self.k_conf * (n.max(2) as f64).ln() / self.epsilon).max(2.0)
    }

    /// Small-cluster divisor `ρ = growth^δ` (floored at 2 so cluster sizes
    /// strictly shrink and the recursion terminates).
    pub fn rho(&self, n: usize) -> f64 {
        self.growth(n).powf(self.delta).max(2.0)
    }

    /// Base-case size `n_final = n^{γ₁}` (floored at 4).
    pub fn n_final(&self, n: usize) -> usize {
        ((n.max(2) as f64).powf(self.gamma1).ceil() as usize).max(4)
    }

    /// Lemma 4.2's hop bound for distance `d` with top parameter `beta0`:
    /// `h = n^{1/δ} · n_final^{1−1/δ} · β₀ · d`, scaled by a safety
    /// constant of 8 (Markov gives a factor-4 exceedance bound; we double
    /// it) and clamped to `[4, n]`.
    pub fn hop_bound(&self, n: usize, beta0: f64, d: u64) -> usize {
        let nf = self.n_final(n) as f64;
        let raw = (n.max(2) as f64).powf(1.0 / self.delta)
            * nf.powf(1.0 - 1.0 / self.delta)
            * beta0
            * d as f64;
        ((8.0 * raw).ceil() as usize).clamp(4, n.max(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        HopsetParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let p = HopsetParams {
            delta: 1.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = HopsetParams {
            gamma1: 0.99,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = HopsetParams {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = HopsetParams {
            k_conf: 0.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn beta_grows_geometrically_claim_4_1() {
        let p = HopsetParams::default();
        let n = 10_000;
        let g = p.growth(n);
        let b0 = p.beta0(n);
        // after i levels β_i = g^i β₀
        let b3 = b0 * g * g * g;
        assert!((b3 / b0 - g.powi(3)).abs() < 1e-9);
        assert!(g >= 2.0);
    }

    #[test]
    fn rho_exceeds_growth_for_delta_above_one() {
        let p = HopsetParams::default();
        let n = 100_000;
        assert!(p.rho(n) >= p.growth(n), "ρ = growth^δ with δ>1");
    }

    #[test]
    fn hop_bound_scales_linearly_in_d() {
        let p = HopsetParams::default();
        let n = 1_000_000;
        let b0 = p.beta0(n);
        let h1 = p.hop_bound(n, b0, 1_000);
        let h2 = p.hop_bound(n, b0, 2_000);
        // up to clamping, doubling d doubles the bound
        if h2 < n {
            assert!(h2 >= h1, "hop bound must be monotone in d");
        }
        assert!(p.hop_bound(n, b0, 0) >= 4, "floor applies");
    }

    #[test]
    fn n_final_floor() {
        let p = HopsetParams::default();
        assert!(p.n_final(10) >= 4);
        assert!(p.n_final(1_000_000) >= 4);
    }
}
