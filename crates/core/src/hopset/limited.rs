//! Appendix C — obtaining lower depth with *limited hopsets*.
//!
//! Lemma C.1: for hidden disjoint paths of at most `k = n^{2η}` hops and
//! weight in `[d, d·n^η]`, a single rounded Algorithm 4 run with
//! `δ = 2/η`, `β₀ = (n^{3η}/ε)^{−1}`, `n_final = n^{η/2}` produces
//! shortcut edges under which each path has an `n^η`-hop equivalent with
//! `(1+ε)` total distortion.
//!
//! Theorem C.2 iterates: run the Lemma C.1 routine for every band
//! `d = (n^η)^j`, **add the shortcut edges to the working graph**, and
//! repeat `1/η` times. Each iteration divides the hop count of any path by
//! `n^η`, so after `1/η` rounds every pair has an `n^{2η} = n^α`-hop
//! `(1+O(ε/η))`-approximate path — the `O(n^α)`-depth regime.

use super::rounding::Rounding;
use super::unweighted::build_hopset_with_beta0_on;
use super::{Hopset, HopsetParams};
use psh_exec::Executor;
use psh_graph::{CsrGraph, Edge};
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lemma C.1: shortcut edges for the band `[d, d·n^η]`, returned in the
/// **original** weight scale (weights rounded up, so they still dominate
/// true distances).
pub fn limited_hopset<R: Rng>(
    g: &CsrGraph,
    d: u64,
    eta: f64,
    epsilon: f64,
    rng: &mut R,
) -> (Vec<Edge>, Cost) {
    limited_hopset_with(&Executor::current(), g, d, eta, epsilon, rng)
}

/// [`limited_hopset`] on an explicit executor.
pub fn limited_hopset_with<R: Rng>(
    exec: &Executor,
    g: &CsrGraph,
    d: u64,
    eta: f64,
    epsilon: f64,
    rng: &mut R,
) -> (Vec<Edge>, Cost) {
    assert!(eta > 0.0 && eta < 0.5, "need 0 < η < 1/2");
    let n = g.n().max(2) as f64;
    let k_hops = n.powf(2.0 * eta).ceil().max(2.0) as u64;
    let zeta = epsilon / 2.0;
    let rounding = Rounding::for_band(d, k_hops, zeta);
    let rounded = rounding.round_graph(g);
    // Lemma C.1 parameters: δ = 2/η, n_final = n^{η/2}, β₀ = ε/n^{3η}.
    let params = HopsetParams {
        epsilon,
        delta: (2.0 / eta).max(1.01),
        gamma1: (eta / 2.0).clamp(0.05, 0.45),
        gamma2: (3.0 * eta).clamp(0.1, 0.96).max((eta / 2.0) + 0.05),
        k_conf: 1.0,
    };
    let beta0 = (epsilon / n.powf(3.0 * eta)).min(1.0);
    let (hopset, cost) = build_hopset_with_beta0_on(exec, &rounded, &params, beta0, rng);
    // convert shortcut weights back to the original scale (ceil: never
    // undershoots the true path weight the edge represents)
    let edges: Vec<Edge> = hopset
        .edges
        .into_iter()
        .map(|e| Edge::new(e.u, e.v, rounding.unround(e.w).ceil() as u64))
        .collect();
    (edges, cost)
}

/// Theorem C.2: iterate limited hopsets to reach `O(n^α)`-hop paths.
///
/// Returns the accumulated hopset (all shortcut edges, original scale).
pub fn low_depth_hopset<R: Rng>(
    g: &CsrGraph,
    alpha: f64,
    epsilon: f64,
    rng: &mut R,
) -> (Hopset, Cost) {
    assert!(alpha > 0.0 && alpha < 1.0, "need 0 < α < 1");
    low_depth_hopset_impl(&Executor::current(), g, alpha, epsilon, rng)
}

/// Theorem C.2's body — `alpha` validation happens in the builder
/// ([`crate::api::HopsetBuilder::limited`]) or the wrapper above. The
/// bands of one iteration fan out on `exec` with seeds pre-drawn in band
/// order; iterations stay sequential (each feeds the next its shortcuts).
pub(crate) fn low_depth_hopset_impl<R: Rng>(
    exec: &Executor,
    g: &CsrGraph,
    alpha: f64,
    epsilon: f64,
    rng: &mut R,
) -> (Hopset, Cost) {
    let eta = (alpha / 2.0).clamp(1e-3, 0.49);
    let iterations = (1.0 / eta).ceil() as usize;
    let n = g.n().max(2) as f64;
    let band = n.powf(eta).max(2.0);
    let d_max = (g.n() as u64).saturating_mul(g.max_weight().unwrap_or(1));

    let mut working = g.clone();
    let mut acc = Hopset::empty(g.n());
    let mut total_cost = Cost::ZERO;
    for _ in 0..iterations {
        // all bands of one iteration run in parallel (par-composed costs)
        let mut tasks: Vec<(u64, u64)> = Vec::new(); // (band start d, seed)
        let mut d: u64 = 1;
        while d <= d_max {
            tasks.push((d, rng.random()));
            let next = (d as f64 * band).ceil() as u64;
            d = next.max(d + 1);
        }
        let band_results: Vec<(Vec<Edge>, Cost)> = exec.par_map(&tasks, 1, |&(d, seed)| {
            limited_hopset_with(
                exec,
                &working,
                d,
                eta,
                epsilon,
                &mut StdRng::seed_from_u64(seed),
            )
        });
        let iter_cost = Cost::par_all(band_results.iter().map(|(_, c)| *c));
        let new_edges: Vec<Edge> = band_results.into_iter().flat_map(|(e, _)| e).collect();
        total_cost = total_cost.then(iter_cost);
        if new_edges.is_empty() {
            break;
        }
        // shortcuts become real edges for the next iteration
        let merged: Vec<Edge> = working
            .edges()
            .iter()
            .copied()
            .chain(new_edges.iter().copied())
            .collect();
        working = CsrGraph::from_edges(g.n(), merged);
        total_cost = total_cost.then(Cost::flat(working.m() as u64));
        acc.merge(Hopset {
            n: g.n(),
            edges: new_edges,
            ..Default::default()
        });
    }
    acc.levels = iterations;
    (acc, total_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
    use psh_graph::traversal::dijkstra::dijkstra_pair;
    use psh_graph::INF;

    #[test]
    fn limited_hopset_edges_dominate_distances() {
        let g = generators::path(256);
        let mut rng = StdRng::seed_from_u64(1);
        let (edges, _) = limited_hopset(&g, 16, 0.3, 0.5, &mut rng);
        let h = Hopset {
            n: g.n(),
            edges,
            ..Default::default()
        };
        h.validate_no_shortcuts_below_distance(&g).unwrap();
    }

    #[test]
    fn low_depth_hopset_shortens_paths() {
        let n = 400;
        let g = generators::path(n);
        let mut rng = StdRng::seed_from_u64(2);
        let (h, _) = low_depth_hopset(&g, 0.6, 0.5, &mut rng);
        assert!(h.size() > 0, "expected shortcut edges");
        let extra = ExtraEdges::from_edges(n, &h.edges);
        let exact = dijkstra_pair(&g, 0, (n - 1) as u32);
        // far fewer hops than the n-1 trivial path
        let budget = n / 4;
        let (d, hops, _) = hop_limited_pair(&g, Some(&extra), 0, (n - 1) as u32, budget);
        assert!(d != INF, "not reachable within {budget} hops");
        assert!((hops as usize) < n - 1);
        assert!(
            (d as f64) <= 2.5 * exact as f64,
            "distortion too large: {d} vs {exact}"
        );
    }

    #[test]
    fn accumulated_edges_still_dominate_true_distances() {
        let g = generators::grid(12, 12);
        let mut rng = StdRng::seed_from_u64(3);
        let (h, _) = low_depth_hopset(&g, 0.5, 0.5, &mut rng);
        h.validate_no_shortcuts_below_distance(&g).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::path(128);
        let (a, _) = low_depth_hopset(&g, 0.5, 0.5, &mut StdRng::seed_from_u64(4));
        let (b, _) = low_depth_hopset(&g, 0.5, 0.5, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
