//! Hopset constructions (§4, §5, Appendices B–C).
//!
//! A `(ε, h, m')`-hopset (Definition 2.4) is a set `E'` of at most `m'`
//! weighted edges, each realizing the length of an actual path in `G`,
//! such that for any `u, v`, with probability ≥ 1/2,
//! `dist^h_{E ∪ E'}(u, v) ≤ (1 + ε)·dist(u, v)`.
//!
//! * [`unweighted`] — Algorithm 4: recursive exponential start time
//!   clustering; large clusters get a **star** (center to every member)
//!   and the large-cluster centers get a **clique** (exact pairwise
//!   distances inside the piece); recursion continues on small clusters
//!   with β growing by `k·log n/ε` per level (Claim 4.1).
//! * [`weighted`] — §5: Klein–Subramanian rounding plus `O(1/η)` distance
//!   estimates `d = (n^η)^j`, one hopset per band.
//! * [`rounding`] — Lemma 5.2's rounding scheme.
//! * [`weight_classes`] — Appendix B: reduce arbitrary positive weights to
//!   polynomially bounded ones via a hierarchical weight decomposition.
//! * [`limited`] — Appendix C: limited hopsets that shorten `n^{2η}`-hop
//!   paths to `n^η` hops, iterated `1/η` times for `O(n^α)` query depth.

pub mod decomposition_tree;
pub mod limited;
pub mod params;
pub mod rounding;
pub mod unweighted;
pub mod weight_classes;
pub mod weighted;

pub use params::HopsetParams;
pub use unweighted::SplitStrategy;
pub use weight_classes::WeightClassDecomposition;
pub use weighted::WeightedHopsets;

use psh_graph::traversal::bellman_ford::ExtraEdges;
use psh_graph::traversal::dijkstra::dijkstra;
use psh_graph::{CsrGraph, Edge};

/// A constructed hopset over the vertices of some graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hopset {
    /// Number of vertices of the underlying graph.
    pub n: usize,
    /// Shortcut edges; each weight is the length of an actual path.
    pub edges: Vec<Edge>,
    /// How many of the edges are star edges (Lemma 4.3 bounds these by n).
    pub star_count: usize,
    /// How many are clique edges (bounded by `(n/n_final)·ρ²`).
    pub clique_count: usize,
    /// Deepest recursion level that produced edges.
    pub levels: usize,
}

impl Hopset {
    /// An empty hopset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Hopset {
            n,
            ..Default::default()
        }
    }

    /// Total number of shortcut edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Compile into the adjacency form the query engine consumes.
    pub fn to_extra_edges(&self) -> ExtraEdges {
        ExtraEdges::from_edges(self.n, &self.edges)
    }

    /// Absorb another hopset over the same vertex set (Appendix C
    /// accumulates limited hopsets across iterations).
    pub fn merge(&mut self, other: Hopset) {
        assert_eq!(self.n, other.n);
        self.edges.extend(other.edges);
        self.star_count += other.star_count;
        self.clique_count += other.clique_count;
        self.levels = self.levels.max(other.levels);
    }

    /// Verify Definition 2.4 property 2 from below: no shortcut edge may be
    /// shorter than the true distance (each is supposed to be a real path).
    /// Exact (runs Dijkstra per distinct source) — test-sized graphs only.
    pub fn validate_no_shortcuts_below_distance(&self, g: &CsrGraph) -> Result<(), String> {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        let mut i = 0;
        while i < edges.len() {
            let u = edges[i].u;
            let dist = dijkstra(g, u);
            while i < edges.len() && edges[i].u == u {
                let e = edges[i];
                let d = dist.dist[e.v as usize];
                if e.w < d {
                    return Err(format!(
                        "hopset edge ({}, {}) weight {} undercuts dist {}",
                        e.u, e.v, e.w, d
                    ));
                }
                i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Hopset {
            n: 5,
            edges: vec![Edge::new(0, 1, 3)],
            star_count: 1,
            clique_count: 0,
            levels: 1,
        };
        let b = Hopset {
            n: 5,
            edges: vec![Edge::new(2, 3, 4)],
            star_count: 0,
            clique_count: 1,
            levels: 2,
        };
        a.merge(b);
        assert_eq!(a.size(), 2);
        assert_eq!(a.star_count, 1);
        assert_eq!(a.clique_count, 1);
        assert_eq!(a.levels, 2);
    }

    #[test]
    fn validation_catches_too_short_edges() {
        let g = psh_graph::generators::path(5);
        let ok = Hopset {
            n: 5,
            edges: vec![Edge::new(0, 4, 4)],
            ..Default::default()
        };
        assert!(ok.validate_no_shortcuts_below_distance(&g).is_ok());
        let bad = Hopset {
            n: 5,
            edges: vec![Edge::new(0, 4, 3)],
            ..Default::default()
        };
        assert!(bad.validate_no_shortcuts_below_distance(&g).is_err());
    }

    #[test]
    fn empty_hopset_compiles_to_empty_extra() {
        let h = Hopset::empty(7);
        assert_eq!(h.size(), 0);
        assert!(h.to_extra_edges().is_empty());
    }
}
