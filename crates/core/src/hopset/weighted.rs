//! §5 — hopsets in weighted graphs.
//!
//! For each distance estimate `d` running over powers of `n^η` (so
//! `O(1/η)` estimates per factor-`n` of weight range, `O(3/η)` total for
//! polynomially bounded weights), round the graph to the grid of
//! Lemma 5.2 and build an Algorithm 4 hopset on the rounded graph with
//! `β₀ = (n/ε)^{−γ₂}` and `n_final = n^{γ₁}` (Theorem 5.3).
//!
//! A query `(s, t)` runs the h-hop Bellman–Ford in **every** band and
//! takes the minimum of the unrounded values. Soundness: rounding only
//! inflates weights and hop limits only inflate distances, so every band's
//! value is ≥ `dist(s, t)`; for the band with `d ≤ dist(s,t) ≤ n^η·d`, the
//! value is ≤ `(1+ζ)(1+O(ε log n))·dist(s,t)` with probability ≥ 1/2
//! (Lemma 4.2 + Lemma 5.2) — so the minimum is a `(1+ε')`-approximation.

use super::rounding::Rounding;
use super::unweighted::build_hopset_with_beta0_on;
use super::{Hopset, HopsetParams};
use psh_exec::Executor;
use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
use psh_graph::{CsrGraph, VertexId, INF};
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One distance band's rounded graph and hopset.
#[derive(Clone, Debug)]
pub struct EstimateBand {
    /// Lower end of the distance band covered by this estimate.
    pub d: u64,
    /// The rounding applied (`ŵ = ζd/k`).
    pub rounding: Rounding,
    /// The rounded graph.
    pub graph: CsrGraph,
    /// The hopset built on the rounded graph.
    pub hopset: Hopset,
    /// Compiled adjacency of the hopset.
    pub extra: ExtraEdges,
    /// Hop budget for queries in this band (Lemma 4.2's `h`).
    pub h: usize,
}

/// The full §5 construction: one hopset per distance band.
#[derive(Clone, Debug)]
pub struct WeightedHopsets {
    /// Bands in increasing `d`.
    pub bands: Vec<EstimateBand>,
    /// Band-width exponent: each band covers `[d, d·n^η]`.
    pub eta: f64,
    /// Distortion parameter used at construction.
    pub epsilon: f64,
    n: usize,
}

impl WeightedHopsets {
    /// Reassemble a family from its parts (the snapshot loader's entry
    /// point — `n` is private to keep external construction honest).
    pub(crate) fn from_parts(
        bands: Vec<EstimateBand>,
        eta: f64,
        epsilon: f64,
        n: usize,
    ) -> WeightedHopsets {
        WeightedHopsets {
            bands,
            eta,
            epsilon,
            n,
        }
    }

    /// Total hopset edges across all bands.
    pub fn total_size(&self) -> usize {
        self.bands.iter().map(|b| b.hopset.size()).sum()
    }

    /// Number of estimate bands.
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// Approximate `s`–`t` distance: minimum over bands of the unrounded
    /// h-hop distance. Returns `f64::INFINITY` when no band connects them.
    pub fn query(&self, s: VertexId, t: VertexId) -> (f64, Cost) {
        if s == t {
            return (0.0, Cost::ZERO);
        }
        let mut best = f64::INFINITY;
        let mut cost = Cost::ZERO;
        // The paper tries all bands in parallel; costs compose with par.
        for band in &self.bands {
            let (d, _, c) = hop_limited_pair(&band.graph, Some(&band.extra), s, t, band.h);
            cost = cost.par(c);
            if d != INF {
                best = best.min(band.rounding.unround(d));
            }
        }
        (best, cost)
    }
}

/// Build the §5 weighted hopsets with band exponent `eta ∈ (0, 1)`.
///
/// Panics on invalid parameters; prefer
/// [`crate::api::HopsetBuilder::weighted`], which reports them as
/// [`crate::error::PshError`] values.
pub fn build_weighted_hopsets<R: Rng>(
    g: &CsrGraph,
    params: &HopsetParams,
    eta: f64,
    rng: &mut R,
) -> (WeightedHopsets, Cost) {
    params.validate().expect("invalid hopset parameters");
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1), got {eta}");
    build_weighted_hopsets_impl(
        &Executor::current(),
        g,
        params,
        eta,
        params.beta0_weighted(g.n()),
        rng,
    )
}

/// §5's construction body with an explicit `β₀` — parameter validation
/// happens in the builder (or the wrapper above) before this runs.
///
/// The bands really are built in parallel on `exec` (the paper's
/// schedule): band seeds are drawn in deterministic band order before the
/// fan-out, so the family is byte-identical for any policy.
pub(crate) fn build_weighted_hopsets_impl<R: Rng>(
    exec: &Executor,
    g: &CsrGraph,
    params: &HopsetParams,
    eta: f64,
    beta0: f64,
    rng: &mut R,
) -> (WeightedHopsets, Cost) {
    let n = g.n();
    let zeta = params.epsilon / 2.0;
    // band multiplier c = n^η, floored at 2 so the loop advances
    let c = (n.max(2) as f64).powf(eta).max(2.0);
    let d_max: u64 = (n as u64).saturating_mul(g.max_weight().unwrap_or(1));

    let mut tasks: Vec<(u64, u64)> = Vec::new(); // (band start d, seed)
    let mut d: u64 = 1;
    while d <= d_max {
        tasks.push((d, rng.random()));
        // next band: d ← d · n^η
        let next = (d as f64 * c).ceil() as u64;
        d = next.max(d + 1);
    }

    let bands: Vec<(EstimateBand, Cost)> = exec.par_map(&tasks, 1, |&(d, seed)| {
        // paths in this band have ≤ n hops and weight ≤ c·d
        let rounding = Rounding::for_band(d, n.max(2) as u64, zeta);
        let graph = rounding.round_graph(g);
        let (hopset, hcost) = build_hopset_with_beta0_on(
            exec,
            &graph,
            params,
            beta0,
            &mut StdRng::seed_from_u64(seed),
        );
        // hop budget from Lemma 4.2 at the band's top distance, in rounded
        // units (the search runs on the rounded graph)
        let d_rounded_top = ((c * d as f64) / rounding.what).ceil() as u64;
        let h = params.hop_bound(n, beta0, d_rounded_top.max(1));
        let extra = hopset.to_extra_edges();
        (
            EstimateBand {
                d,
                rounding,
                graph,
                hopset,
                extra,
                h,
            },
            hcost.then(Cost::flat(g.m() as u64)),
        )
    });
    // bands are built in parallel in the paper: par-compose their costs
    let cost = Cost::par_all(bands.iter().map(|(_, c)| *c));
    let bands: Vec<EstimateBand> = bands.into_iter().map(|(b, _)| b).collect();
    (
        WeightedHopsets {
            bands,
            eta,
            epsilon: params.epsilon,
            n,
        },
        cost,
    )
}

/// Convenience: number of vertices the construction covers.
impl WeightedHopsets {
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::dijkstra::dijkstra;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn weighted_instance(seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::grid(12, 12);
        generators::with_uniform_weights(&base, 1, 50, &mut rng)
    }

    #[test]
    fn bands_cover_the_weight_range() {
        let g = weighted_instance(1);
        let mut rng = StdRng::seed_from_u64(2);
        let (wh, _) = build_weighted_hopsets(&g, &test_params(), 0.4, &mut rng);
        assert!(wh.num_bands() >= 2, "expected multiple bands");
        // bands increase geometrically
        for pair in wh.bands.windows(2) {
            assert!(pair[1].d > pair[0].d);
        }
        let d_max = (g.n() as u64) * g.max_weight().unwrap();
        assert!(
            wh.bands.last().unwrap().d <= d_max,
            "last band beyond the distance range"
        );
    }

    #[test]
    fn query_never_undershoots_and_approximates() {
        let g = weighted_instance(3);
        let mut rng = StdRng::seed_from_u64(4);
        let (wh, _) = build_weighted_hopsets(&g, &test_params(), 0.4, &mut rng);
        let exact = dijkstra(&g, 0);
        let mut checked = 0;
        for t in [10u32, 50, 100, 143] {
            let (approx, _) = wh.query(0, t);
            let ex = exact.dist[t as usize] as f64;
            assert!(
                approx >= ex - 1e-9,
                "t={t}: approx {approx} undershoots exact {ex}"
            );
            // generous factor: (1+ζ)(1 + ε·levels) with test params
            assert!(
                approx <= 3.0 * ex,
                "t={t}: approx {approx} too far above exact {ex}"
            );
            checked += 1;
        }
        assert_eq!(checked, 4);
    }

    #[test]
    fn self_query_is_zero() {
        let g = weighted_instance(5);
        let mut rng = StdRng::seed_from_u64(6);
        let (wh, _) = build_weighted_hopsets(&g, &test_params(), 0.5, &mut rng);
        let (d, _) = wh.query(7, 7);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn disconnected_pairs_report_infinity() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(7);
        let (wh, _) = build_weighted_hopsets(&g, &test_params(), 0.5, &mut rng);
        let (d, _) = wh.query(0, 3);
        assert!(d.is_infinite());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = weighted_instance(8);
        let (a, _) = build_weighted_hopsets(&g, &test_params(), 0.4, &mut StdRng::seed_from_u64(9));
        let (b, _) = build_weighted_hopsets(&g, &test_params(), 0.4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.total_size(), b.total_size());
        for (x, y) in a.bands.iter().zip(&b.bands) {
            assert_eq!(x.hopset, y.hopset);
        }
    }
}
