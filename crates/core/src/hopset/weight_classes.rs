//! Appendix B — preprocessing to create instances with polynomially
//! bounded edge weights (Lemma 5.1).
//!
//! Edges are split into categories by powers of `base = n/ε`:
//! `E_i = { e : base^i ≤ w(e) < base^{i+1} }`. Contracting the prefix
//! `P_{j−1} = E_0 ∪ … ∪ E_{q(j−1)}` (treating those light edges as length
//! 0) distorts any path that must use a category-`q(j)` edge by at most a
//! multiplicative `ε`, because a path has at most `n−1` edges and each
//! dropped edge is lighter by a factor `≥ n/ε`. Meanwhile edges above
//! category `q(j)+1` can never appear on the path at all. So each query
//! can be answered inside the quotient graph
//! `G[P_{q(j+1)}]/P_{q(j−1)}`, whose weights span only `O((n/ε)³)` — the
//! polynomially-bounded instances §5's hopsets require.
//!
//! The **hierarchical weight decomposition** (Definition B.1) is the tree
//! of connected components of the prefixes; the level at which `s` and `t`
//! first share a component (their LCA level) selects the query graph.
//!
//! Bookkeeping note: we store per-level component labels
//! (`O(n · #levels)` ints) rather than implementing the paper's chain
//! trimming; the *graph collection* itself still satisfies Lemma 5.1's
//! size bound — every edge appears in at most two query graphs, and query
//! graph vertices are compacted to touched components only.

use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::union_find::UnionFind;
use psh_graph::{CsrGraph, Edge, VertexId, Weight, INF};
use psh_pram::Cost;
use std::collections::HashMap;

/// One level of the decomposition: a non-empty weight category, the
/// component structure of its prefix, and the query graph that answers
/// LCA-at-this-level queries.
///
/// The query graph keeps the **three** categories `q(j−1), q(j), q(j+1)`
/// and contracts only `P_{q(j−2)}`: a shortest path whose LCA level is `j`
/// must use a `q(j)` edge (weight `≥ base^{q(j)}`) but may also lean
/// heavily on `q(j−1)` edges, so those cannot be contracted — only
/// categories two or more below are ≥ `n/ε` lighter per edge and safe to
/// zero out (total error `≤ n·(ε/n)·base^{q(j)} ≤ ε·dist`).
#[derive(Clone, Debug)]
pub struct Level {
    /// Category index `q(j)` (weights in `[base^q, base^{q+1})`).
    pub category: u32,
    /// Component label of every vertex in `P_{q(j)}` (prefix **through**
    /// this category).
    pub labels: Vec<u32>,
    /// Number of components of the prefix.
    pub num_components: usize,
    /// Query graph: categories `q(j)−1 ..= q(j)+1` over the components of
    /// the contracted prefix (vertices compacted).
    pub query_graph: CsrGraph,
    /// Map from contracted-prefix component label to query-graph vertex.
    pub comp_to_local: HashMap<u32, u32>,
    /// Which level's labels define the contracted prefix (`None` =
    /// nothing contracted, endpoints map to themselves).
    pub contract_level: Option<usize>,
}

/// The full Appendix B decomposition.
#[derive(Clone, Debug)]
pub struct WeightClassDecomposition {
    /// Levels in increasing category order.
    pub levels: Vec<Level>,
    /// The category base `n/ε`.
    pub base: f64,
    n: usize,
}

impl WeightClassDecomposition {
    /// Build the decomposition of `g` with distortion parameter `eps`.
    pub fn build(g: &CsrGraph, eps: f64) -> (Self, Cost) {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let n = g.n();
        let base = (n.max(2) as f64 / eps).max(2.0);
        // categorize edges
        let cat_of = |w: Weight| -> u32 { (w as f64).log(base).floor().max(0.0) as u32 };
        let mut by_cat: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for (eid, e) in g.edges().iter().enumerate() {
            by_cat.entry(cat_of(e.w)).or_default().push(eid as u32);
        }
        let cats: Vec<u32> = by_cat.keys().copied().collect();
        let mut uf = UnionFind::new(n);
        // label history: identity before any level, then after each level
        let identity: Vec<u32> = (0..n as u32).collect();
        let mut label_history: Vec<Vec<u32>> = Vec::with_capacity(cats.len());
        let mut levels = Vec::with_capacity(cats.len());
        let mut cost = Cost::flat(g.m() as u64 + n as u64);

        for (j, &cat) in cats.iter().enumerate() {
            // Work in *category space*: keep categories cat−1, cat, cat+1;
            // contract the prefix through the last non-empty category
            // ≤ cat−2. (With gaps between non-empty categories this is
            // tighter than "previous two levels": a kept category that is
            // ≥ 2 below cat would blow the base³ weight-ratio promise,
            // and one that is ≥ 2 above can never lie on a shortest path.)
            let contract_idx = cats[..j].iter().rposition(|&c| c + 2 <= cat);
            let contract_labels: &[u32] = match contract_idx {
                Some(j2) => &label_history[j2],
                None => &identity,
            };
            let mut cat_eids: Vec<u32> = by_cat[&cat].clone();
            if cat >= 1 {
                if let Some(eids) = by_cat.get(&(cat - 1)) {
                    cat_eids.extend(eids);
                }
            }
            if let Some(eids) = by_cat.get(&(cat + 1)) {
                cat_eids.extend(eids);
            }
            let mut qedges: Vec<(u32, u32, Weight)> = Vec::new();
            let mut touched: Vec<u32> = Vec::new();
            for &eid in &cat_eids {
                let e = g.edge(eid);
                let (a, b) = (contract_labels[e.u as usize], contract_labels[e.v as usize]);
                if a != b {
                    qedges.push((a, b, e.w));
                    touched.push(a);
                    touched.push(b);
                }
            }
            touched.sort_unstable();
            touched.dedup();
            let comp_to_local: HashMap<u32, u32> = touched
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i as u32))
                .collect();
            let query_graph = CsrGraph::from_edges(
                touched.len(),
                qedges
                    .iter()
                    .map(|&(a, b, w)| Edge::new(comp_to_local[&a], comp_to_local[&b], w)),
            );
            cost = cost.then(Cost::flat(cat_eids.len() as u64 + touched.len() as u64));

            // advance the prefix: union this category's edges
            for &eid in &by_cat[&cat] {
                let e = g.edge(eid);
                uf.union(e.u, e.v);
            }
            let (labels, num_components) = uf.labels();
            cost = cost.then(Cost::flat(by_cat[&cat].len() as u64 + n as u64));

            levels.push(Level {
                category: cat,
                labels: labels.clone(),
                num_components,
                query_graph,
                comp_to_local,
                contract_level: contract_idx,
            });
            label_history.push(labels);
        }

        (WeightClassDecomposition { levels, base, n }, cost)
    }

    /// The LCA level of `s` and `t`: the first level whose prefix connects
    /// them. `None` if they are disconnected in `G`. Linear scan over the
    /// levels; see [`Self::decomposition_tree`] for the `O(log)` variant.
    pub fn lca_level(&self, s: VertexId, t: VertexId) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.labels[s as usize] == l.labels[t as usize])
    }

    /// Materialize the Definition B.1 tree over this decomposition's
    /// levels, enabling `O(log levels)` LCA-level queries (the structure
    /// the paper obtains by parallel tree contraction).
    pub fn decomposition_tree(&self) -> super::decomposition_tree::DecompositionTree {
        let level_labels: Vec<Vec<u32>> = self.levels.iter().map(|l| l.labels.clone()).collect();
        super::decomposition_tree::DecompositionTree::from_level_labels(self.n, &level_labels)
    }

    /// Approximate `s`–`t` distance through the decomposition: answer the
    /// query in the LCA level's quotient graph. Lemma 5.1: the result is
    /// within `[(1−ε)·dist, dist]` of the true distance.
    pub fn query(&self, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        let Some(j) = self.lca_level(s, t) else {
            return INF;
        };
        let level = &self.levels[j];
        // map endpoints through the contracted prefix
        let (cs, ct) = match level.contract_level {
            None => (s, t),
            Some(j2) => {
                let prev = &self.levels[j2];
                (prev.labels[s as usize], prev.labels[t as usize])
            }
        };
        if cs == ct {
            // connected by contracted (negligible) edges only
            return 0;
        }
        let (Some(&ls), Some(&lt)) = (level.comp_to_local.get(&cs), level.comp_to_local.get(&ct))
        else {
            return INF;
        };
        dijkstra_pair(&level.query_graph, ls, lt)
    }

    /// Lemma 5.1's size accounting: total vertices and edges across all
    /// query graphs.
    pub fn collection_size(&self) -> (usize, usize) {
        let v = self.levels.iter().map(|l| l.query_graph.n()).sum();
        let e = self.levels.iter().map(|l| l.query_graph.m()).sum();
        (v, e)
    }

    /// Number of vertices of the original graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Verify Lemma 5.1's weight-ratio promise: every query graph spans at
    /// most `base³` in weights (categories `q(j)`, `q(j+1)` are adjacent
    /// powers of `base`, plus in-category spread).
    pub fn max_query_weight_ratio(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.query_graph.weight_ratio())
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use psh_graph::traversal::dijkstra::dijkstra;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A graph with weights spanning far more than n³.
    fn wide_weight_graph(seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::connected_random(60, 120, &mut rng);
        generators::with_log_uniform_weights(&base, 1e15, &mut rng)
    }

    #[test]
    fn query_sandwiched_by_lemma_5_1() {
        let g = wide_weight_graph(1);
        let eps = 0.2;
        let (dec, _) = WeightClassDecomposition::build(&g, eps);
        let exact = dijkstra(&g, 0);
        for t in 1..g.n() as u32 {
            let approx = dec.query(0, t);
            let ex = exact.dist[t as usize];
            assert!(approx <= ex, "t={t}: {approx} > exact {ex}");
            assert!(
                approx as f64 >= (1.0 - eps) * ex as f64 - 1.0,
                "t={t}: {approx} below (1-ε)·{ex}"
            );
        }
    }

    #[test]
    fn query_graphs_have_bounded_weight_ratio() {
        let g = wide_weight_graph(2);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        let bound = dec.base.powi(3);
        assert!(
            dec.max_query_weight_ratio() <= bound,
            "ratio {} exceeds base³ = {bound}",
            dec.max_query_weight_ratio()
        );
    }

    #[test]
    fn collection_size_is_linear() {
        let g = wide_weight_graph(3);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        let (v, e) = dec.collection_size();
        // every edge appears in ≤ 3 query graphs (its own category ±1);
        // vertices ≤ 2·edges
        assert!(e <= 3 * g.m(), "edge blowup: {e} vs m={}", g.m());
        assert!(v <= 6 * g.m() + dec.levels.len());
    }

    #[test]
    fn lca_level_is_monotone_in_connectivity() {
        let g = wide_weight_graph(4);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        // once connected at level j, stay connected at every later level
        for s in 0..10u32 {
            for t in 10..20u32 {
                if let Some(j) = dec.lca_level(s, t) {
                    for l in j..dec.levels.len() {
                        assert_eq!(
                            dec.levels[l].labels[s as usize],
                            dec.levels[l].labels[t as usize]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_vertices_have_no_lca() {
        let g = CsrGraph::from_edges(4, [Edge::new(0, 1, 5), Edge::new(2, 3, 7)]);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        assert_eq!(dec.lca_level(0, 3), None);
        assert_eq!(dec.query(0, 3), INF);
        assert_eq!(dec.query(0, 1), 5);
    }

    #[test]
    fn tree_lca_matches_linear_scan() {
        let g = wide_weight_graph(9);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        let tree = dec.decomposition_tree();
        for s in 0..g.n() as u32 {
            for t in [0u32, 7, 23, 41, 59] {
                if s == t {
                    assert_eq!(tree.lca_level(s, t), Some(0));
                } else {
                    // tree levels are 1-based over the decomposition's
                    // 0-based levels (tree level 0 = leaves)
                    let via_tree = tree.lca_level(s, t).map(|l| l - 1);
                    assert_eq!(via_tree, dec.lca_level(s, t), "pair ({s},{t})");
                }
            }
        }
    }

    #[test]
    fn uniform_weights_collapse_to_one_level() {
        let g = generators::grid(6, 6);
        let (dec, _) = WeightClassDecomposition::build(&g, 0.25);
        assert_eq!(dec.levels.len(), 1);
        // queries are then exact
        let exact = dijkstra(&g, 0);
        for t in [5u32, 17, 35] {
            assert_eq!(dec.query(0, t), exact.dist[t as usize]);
        }
    }
}
