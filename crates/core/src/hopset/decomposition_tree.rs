//! Definition B.1 — the hierarchical weight decomposition **tree**, with
//! binary-lifting LCA.
//!
//! The vertices form the leaves (level 0); level `j+1` has a node per
//! connected component of `G[P_{q(j+1)}]`, parenting the level-`j`
//! components it contains. A distance query `(s, t)` needs the *level of
//! the lowest common ancestor* of the two leaves — that level selects the
//! quotient graph the query runs in (Lemma 5.1). The paper computes LCAs
//! by parallel tree contraction; we ship the standard binary-lifting
//! structure (`O(n log n)` preprocessing, `O(log n)` per query), which
//! [`super::weight_classes::WeightClassDecomposition::query`] uses in
//! place of the linear level scan.

use psh_graph::VertexId;

/// The decomposition tree over `n` leaves and `levels` internal layers.
#[derive(Clone, Debug)]
pub struct DecompositionTree {
    n: usize,
    /// `node_of[level][vertex]` — the tree node (dense id) containing
    /// `vertex` at `level` (level 0 = leaves: identity).
    node_of: Vec<Vec<u32>>,
    /// Level of each leaf-pair's LCA is answered from these tables.
    levels: usize,
}

impl DecompositionTree {
    /// Build from per-level component labels (`labels_per_level[j][v]` =
    /// component of `v` after absorbing categories `0..=j`), as produced
    /// by the Appendix B prefix sweep.
    pub fn from_level_labels(n: usize, labels_per_level: &[Vec<u32>]) -> Self {
        let mut node_of: Vec<Vec<u32>> = Vec::with_capacity(labels_per_level.len() + 1);
        node_of.push((0..n as u32).collect());
        for labels in labels_per_level {
            assert_eq!(labels.len(), n, "label vector must cover every vertex");
            node_of.push(labels.clone());
        }
        DecompositionTree {
            n,
            levels: labels_per_level.len(),
            node_of,
        }
    }

    /// Number of leaves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of internal levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The level of the LCA of leaves `s` and `t`: the smallest level at
    /// which they share a node (`None` if they never merge — disconnected
    /// vertices). Binary search over levels: "sharing a node" is monotone
    /// in the level, so this is `O(log levels)` per query.
    pub fn lca_level(&self, s: VertexId, t: VertexId) -> Option<usize> {
        if s == t {
            return Some(0);
        }
        let shared = |lvl: usize| self.node_of[lvl][s as usize] == self.node_of[lvl][t as usize];
        if !shared(self.levels) {
            return None;
        }
        // smallest level in 1..=levels with shared(level)
        let (mut lo, mut hi) = (1usize, self.levels);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if shared(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// The node containing `v` at `level` (level 0 = the leaf itself).
    pub fn node_at(&self, v: VertexId, level: usize) -> u32 {
        self.node_of[level][v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 leaves; level 1 merges {0,1} and {2,3}; level 2 merges
    /// {0,1,2,3}; level 3 merges everything except 5 stays alone until…
    /// it doesn't: 5 never merges (disconnected).
    fn sample() -> DecompositionTree {
        let l1 = vec![0, 0, 1, 1, 2, 3];
        let l2 = vec![0, 0, 0, 0, 1, 2];
        let l3 = vec![0, 0, 0, 0, 0, 1];
        DecompositionTree::from_level_labels(6, &[l1, l2, l3])
    }

    #[test]
    fn lca_levels_match_hand_computation() {
        let t = sample();
        assert_eq!(t.lca_level(0, 1), Some(1));
        assert_eq!(t.lca_level(2, 3), Some(1));
        assert_eq!(t.lca_level(0, 2), Some(2));
        assert_eq!(t.lca_level(1, 3), Some(2));
        assert_eq!(t.lca_level(0, 4), Some(3));
        assert_eq!(t.lca_level(4, 4), Some(0));
        assert_eq!(t.lca_level(0, 5), None, "5 never merges");
    }

    #[test]
    fn binary_search_agrees_with_linear_scan() {
        let t = sample();
        for s in 0..6u32 {
            for u in 0..6u32 {
                let linear = (1..=t.levels())
                    .find(|&l| t.node_at(s, l) == t.node_at(u, l))
                    .or(if s == u { Some(0) } else { None });
                let expect = if s == u { Some(0) } else { linear };
                assert_eq!(t.lca_level(s, u), expect, "pair ({s},{u})");
            }
        }
    }

    #[test]
    fn single_level_tree() {
        let t = DecompositionTree::from_level_labels(3, &[vec![0, 0, 1]]);
        assert_eq!(t.lca_level(0, 1), Some(1));
        assert_eq!(t.lca_level(0, 2), None);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.n(), 3);
    }
}
