//! Algorithm 4 — hopset construction by recursive clustering.
//!
//! ```text
//! HopSet(V, E, β):
//!   1. if |V| ≤ n_final: exit
//!   2. X ← ESTCluster(G, β)
//!   3. if this is the first call:
//!   4.   for each cluster X (in parallel): HopSet(X, E(X), growth·β)
//!   5. else:
//!   6.   X_b ← clusters with ≥ |V|/ρ vertices (large)
//!   7.   X_s ← the rest (small)
//!   8.   for each large X with center c, v ∈ X: add star edge (v, c)
//!        with weight dist(v, c)
//!   9.   for all pairs of large clusters: add clique edge (c1, c2)
//!        with weight dist(c1, c2)
//!  10.   for each X ∈ X_s (in parallel): HopSet(X, E(X), growth·β)
//! ```
//!
//! Star weights are the cluster-tree distances (actual paths in `G`);
//! clique weights are exact distances inside the current recursive piece,
//! computed by one bucketed parallel search ([`dial_sssp_with`]) per large
//! center — the searches run in parallel on the [`Executor`]'s pool, as
//! Theorem 4.4's accounting assumes, and the piece's diameter is
//! `O(β⁻¹ log n)` w.h.p. so each search is shallow. The recursive calls
//! (lines 4 and 10) also fan out on the pool, with child seeds drawn in
//! deterministic cluster order *before* the parallel region, so the
//! artifact is byte-identical for any [`psh_exec::ExecutionPolicy`].
//!
//! **Recursion substrate.** The whole recursion is generic over
//! [`GraphView`]: the root call works on whatever the caller hands in
//! (usually an owned [`psh_graph::CsrGraph`]), and each level splits its
//! piece into per-cluster children through one of two interchangeable
//! [`SplitStrategy`]s. The default [`SplitStrategy::Arena`] fills a
//! leased, reusable [`SplitArena`] and recurses on borrowed
//! [`psh_graph::CsrView`]s — no per-child graph materialization, so a
//! depth-`d` build no longer copies the adjacency structure `O(d)` times.
//! [`SplitStrategy::Materialize`] is the legacy reference path (owned
//! `CsrGraph` per child), kept for the `recursion_memory` bench and the
//! `view_equivalence` suite, which prove the two paths produce
//! byte-identical artifacts and Costs.
//!
//! The same code serves the weighted construction of §5: the clustering
//! engine and the bucketed searches already handle integer weights, and §5
//! supplies rounded integer weights (Lemma 5.2) before calling in here.

use super::{Hopset, HopsetParams};
use psh_cluster::ClusterBuilder;
use psh_exec::Executor;
use psh_graph::subgraph::split_by_labels;
use psh_graph::traversal::dial::dial_sssp_with;
use psh_graph::view::SplitArena;
use psh_graph::{Edge, GraphView, VertexId, INF};
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the recursion turns one level's clusters into child subproblems.
/// Both strategies yield byte-identical artifacts and [`Cost`]s; they
/// differ only in allocation behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Fill a per-level [`SplitArena`] (leased from a thread-local pool)
    /// and recurse on borrowed [`psh_graph::CsrView`]s. The production
    /// path: no per-child allocation.
    #[default]
    Arena,
    /// Materialize an owned [`psh_graph::CsrGraph`] per child
    /// (`split_by_labels`). The legacy reference path, kept for
    /// equivalence testing and memory benchmarking.
    Materialize,
}

/// Build a hopset with an explicit top-level β₀ (§5 and Appendix C call
/// this with their own β₀ choices), on the process-default executor.
pub fn build_hopset_with_beta0<G: GraphView, R: Rng>(
    g: &G,
    params: &HopsetParams,
    beta0: f64,
    rng: &mut R,
) -> (Hopset, Cost) {
    build_hopset_with_beta0_on(&Executor::current(), g, params, beta0, rng)
}

/// [`build_hopset_with_beta0`] on an explicit executor — recursion,
/// clusterings, and clique searches all share its pool. Uses the default
/// [`SplitStrategy::Arena`].
pub fn build_hopset_with_beta0_on<G: GraphView, R: Rng>(
    exec: &Executor,
    g: &G,
    params: &HopsetParams,
    beta0: f64,
    rng: &mut R,
) -> (Hopset, Cost) {
    build_hopset_with_strategy_on(exec, g, params, beta0, SplitStrategy::default(), rng)
}

/// [`build_hopset_with_beta0_on`] with an explicit [`SplitStrategy`].
/// The `recursion_memory` bench and the equivalence suites call this with
/// both strategies and assert the outputs are byte-identical.
pub fn build_hopset_with_strategy_on<G: GraphView, R: Rng>(
    exec: &Executor,
    g: &G,
    params: &HopsetParams,
    beta0: f64,
    strategy: SplitStrategy,
    rng: &mut R,
) -> (Hopset, Cost) {
    params.validate().expect("invalid hopset parameters");
    let n = g.n();
    let ctx = Ctx {
        growth: params.growth(n),
        rho: params.rho(n),
        n_final: params.n_final(n),
        exec: exec.clone(),
        strategy,
    };
    let ident: Vec<VertexId> = (0..n as u32).collect();
    let out = recurse(g, &ident, beta0, 0, true, &ctx, rng.random());
    let hopset = Hopset {
        n,
        edges: out.edges,
        star_count: out.stars,
        clique_count: out.cliques,
        levels: out.max_level,
    };
    (hopset, out.cost)
}

struct Ctx {
    growth: f64,
    rho: f64,
    n_final: usize,
    exec: Executor,
    strategy: SplitStrategy,
}

#[derive(Default)]
struct Outcome {
    edges: Vec<Edge>,
    stars: usize,
    cliques: usize,
    max_level: usize,
    cost: Cost,
}

/// Guard against pathological parameterizations: β can only grow so far
/// before every cluster is a singleton anyway.
const BETA_CAP: f64 = 1e12;
const MAX_DEPTH: usize = 64;

fn recurse<G: GraphView>(
    sub: &G,
    to_global: &[VertexId],
    beta: f64,
    depth: usize,
    first: bool,
    ctx: &Ctx,
    seed: u64,
) -> Outcome {
    if sub.n() <= ctx.n_final || depth >= MAX_DEPTH {
        return Outcome::default();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let beta = beta.min(BETA_CAP);
    let (clustering, cluster_cost) = ClusterBuilder::new(beta)
        .build_with_rng_on(&ctx.exec, sub, &mut rng)
        .expect("recursion betas are positive and finite");
    let mut cost = cluster_cost;

    let mut edges: Vec<Edge> = Vec::new();
    let (mut stars, mut cliques) = (0usize, 0usize);
    let threshold = (sub.n() as f64 / ctx.rho).ceil() as usize;
    let next_beta = beta * ctx.growth;

    // Which clusters recurse: all of them on the first call, only the
    // small ones afterwards (lines 3–10). Sizes come straight from the
    // clustering — no split needed to classify.
    let sizes = clustering.sizes();
    let mut recurse_on: Vec<usize> = Vec::new();
    let mut large: Vec<usize> = Vec::new();
    for (cid, &size) in sizes.iter().enumerate() {
        if first {
            recurse_on.push(cid);
        } else if size >= threshold {
            large.push(cid);
        } else {
            recurse_on.push(cid);
        }
    }

    if !first && !large.is_empty() {
        // Star edges (line 8): center to every member, tree distances.
        for &cid in &large {
            let center_local = clustering.centers[cid];
            let center_global = to_global[center_local as usize];
            for (v, &vc) in clustering.cluster_id.iter().enumerate() {
                if vc as usize == cid && v as u32 != center_local {
                    edges.push(Edge::new(
                        to_global[v],
                        center_global,
                        clustering.dist_to_center[v].max(1),
                    ));
                    stars += 1;
                }
            }
        }
        cost = cost.then(Cost::flat(sub.n() as u64));

        // Clique edges (line 9): exact pairwise distances between large
        // centers, one parallel bucketed search per center, all in parallel.
        let centers: Vec<VertexId> = large.iter().map(|&cid| clustering.centers[cid]).collect();
        let searches: Vec<(Vec<u64>, Cost)> = ctx.exec.par_map(&centers, 1, |&c| {
            let (sssp, sc) = dial_sssp_with(&ctx.exec, sub, c);
            (sssp.dist, sc)
        });
        cost = cost.then(Cost::par_all(searches.iter().map(|(_, c)| *c)));
        for (i, &ci) in centers.iter().enumerate() {
            for (j, &cj) in centers.iter().enumerate().skip(i + 1) {
                let d = searches[i].0[cj as usize];
                if d != INF && d > 0 {
                    edges.push(Edge::new(to_global[ci as usize], to_global[cj as usize], d));
                    cliques += 1;
                }
                let _ = j;
            }
        }
        cost = cost.then(Cost::flat((centers.len() * centers.len()) as u64));
    }

    // Recursive calls run in parallel (lines 4 and 10); seeds are drawn in
    // deterministic cluster order before the parallel region. Both split
    // strategies feed the children to the identical recursion, so the
    // fan-out below differs only in where the child bytes live.
    let tasks: Vec<(usize, u64)> = recurse_on.iter().map(|&cid| (cid, rng.random())).collect();
    let children: Vec<Outcome> = match ctx.strategy {
        SplitStrategy::Arena => {
            let mut arena = SplitArena::lease();
            let split_cost = arena.split(sub, &clustering.cluster_id, clustering.num_clusters);
            cost = cost.then(split_cost);
            let arena = &*arena;
            ctx.exec.par_map(&tasks, 1, |&(cid, child_seed)| {
                let child_global: Vec<VertexId> = arena
                    .to_parent(cid)
                    .iter()
                    .map(|&p| to_global[p as usize])
                    .collect();
                let view = arena.view(cid);
                recurse(
                    &view,
                    &child_global,
                    next_beta,
                    depth + 1,
                    false,
                    ctx,
                    child_seed,
                )
            })
        }
        SplitStrategy::Materialize => {
            let (pieces, split_cost) =
                split_by_labels(sub, &clustering.cluster_id, clustering.num_clusters);
            cost = cost.then(split_cost);
            ctx.exec.par_map(&tasks, 1, |&(cid, child_seed)| {
                let piece = &pieces[cid];
                let child_global: Vec<VertexId> = piece
                    .to_parent
                    .iter()
                    .map(|&p| to_global[p as usize])
                    .collect();
                recurse(
                    &piece.graph,
                    &child_global,
                    next_beta,
                    depth + 1,
                    false,
                    ctx,
                    child_seed,
                )
            })
        }
    };

    let mut max_level = if (!first && !large.is_empty()) || !edges.is_empty() {
        depth
    } else {
        0
    };
    let child_cost = Cost::par_all(children.iter().map(|c| c.cost));
    cost = cost.then(child_cost);
    for ch in children {
        edges.extend(ch.edges);
        stars += ch.stars;
        cliques += ch.cliques;
        max_level = max_level.max(ch.max_level);
    }

    Outcome {
        edges,
        stars,
        cliques,
        max_level,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::HopsetBuilder;
    use psh_graph::generators;
    use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
    use psh_graph::traversal::dijkstra::dijkstra_pair;
    use psh_graph::CsrGraph;

    fn test_params() -> HopsetParams {
        // Small-n friendly parameters: coarser top level, small base case.
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn build<R: Rng>(g: &CsrGraph, rng: &mut R) -> (Hopset, Cost) {
        let (artifact, cost) = HopsetBuilder::unweighted()
            .params(test_params())
            .build_with_rng(g, rng)
            .unwrap();
        (artifact.into_single(), cost)
    }

    #[test]
    fn hopset_edges_never_undershoot_distance() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::grid(16, 16);
        let (h, _) = build(&g, &mut rng);
        h.validate_no_shortcuts_below_distance(&g).unwrap();
    }

    #[test]
    fn lemma_4_3_star_edges_at_most_n() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_random(500, 1200, &mut rng);
            let (h, _) = build(&g, &mut rng);
            assert!(
                h.star_count <= g.n(),
                "seed {seed}: {} star edges on n={}",
                h.star_count,
                g.n()
            );
        }
    }

    #[test]
    fn lemma_4_3_clique_edges_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_random(600, 1500, &mut rng);
        let p = test_params();
        let (h, _) = build(&g, &mut rng);
        // bound: (n / n_final) · ρ²
        let bound = (g.n() as f64 / p.n_final(g.n()) as f64) * p.rho(g.n()).powi(2);
        assert!(
            (h.clique_count as f64) <= bound,
            "{} clique edges vs bound {bound}",
            h.clique_count
        );
    }

    #[test]
    fn hopset_reduces_hops_on_long_paths() {
        // A path is the adversarial case for hop counts: without the
        // hopset, s-t needs n-1 hops.
        let n = 512;
        let g = generators::path(n);
        let mut rng = StdRng::seed_from_u64(6);
        let (h, _) = build(&g, &mut rng);
        let extra = ExtraEdges::from_edges(n, &h.edges);
        let s = 0u32;
        let t = (n - 1) as u32;
        let exact = dijkstra_pair(&g, s, t);
        // run with half the hops of the trivial path: the hopset must make
        // the endpoints reachable with modest distortion
        let (d, hops, _) = hop_limited_pair(&g, Some(&extra), s, t, n / 2);
        assert!(d != INF, "hopset failed to shorten the path");
        assert!(
            (hops as usize) < n - 1,
            "hopset should beat the trivial {}-hop path, used {hops}",
            n - 1
        );
        assert!(
            (d as f64) <= 2.0 * exact as f64,
            "distortion too large: {d} vs exact {exact}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid(12, 12);
        let (a, _) = build(&g, &mut StdRng::seed_from_u64(42));
        let (b, _) = build(&g, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn split_strategies_agree_exactly() {
        // The tentpole contract at unit-test granularity: arena-backed
        // recursion and materializing recursion are indistinguishable in
        // artifact and cost. The integration-level proptest suite
        // (tests/view_equivalence.rs) covers more seeds and policies.
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::connected_random(400, 900, &mut rng);
        let p = test_params();
        let beta0 = p.beta0(g.n());
        let exec = Executor::sequential();
        let arena = build_hopset_with_strategy_on(
            &exec,
            &g,
            &p,
            beta0,
            SplitStrategy::Arena,
            &mut StdRng::seed_from_u64(7),
        );
        let materialized = build_hopset_with_strategy_on(
            &exec,
            &g,
            &p,
            beta0,
            SplitStrategy::Materialize,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(arena, materialized);
    }

    #[test]
    fn small_graphs_get_empty_hopsets() {
        let g = generators::path(4);
        let mut rng = StdRng::seed_from_u64(7);
        let (h, _) = build(&g, &mut rng);
        assert_eq!(h.size(), 0, "below n_final nothing should be built");
    }

    #[test]
    fn size_stays_linearish() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::erdos_renyi(800, 3000, &mut rng);
        let p = test_params();
        let (h, _) = build(&g, &mut rng);
        let bound = g.n() as f64 + (g.n() as f64 / p.n_final(g.n()) as f64) * p.rho(g.n()).powi(2);
        assert!(
            (h.size() as f64) <= bound,
            "hopset size {} exceeds Lemma 4.3 bound {bound}",
            h.size()
        );
    }

    #[test]
    fn works_on_weighted_graphs_directly() {
        // §5 feeds rounded integer weights straight into Algorithm 4.
        let mut rng = StdRng::seed_from_u64(9);
        let base = generators::grid(14, 14);
        let g = generators::with_uniform_weights(&base, 1, 6, &mut rng);
        let (h, _) = build(&g, &mut rng);
        h.validate_no_shortcuts_below_distance(&g).unwrap();
    }
}
