//! The workspace-wide typed error for spanner/hopset/oracle construction.
//!
//! Every builder in [`crate::api`] returns `Result<Run<A>, PshError>`
//! instead of panicking: invalid parameters, precondition violations
//! (unit-weight requirements, connectivity requirements), and weight-range
//! violations all surface as values a service can handle. The deprecated
//! free functions preserve their historical panic behaviour by unwrapping
//! these same errors, so the panic messages match what the builders report.

use psh_cluster::ClusterError;
use std::fmt;

/// Why a spanner, hopset, or oracle could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum PshError {
    /// The underlying clustering rejected its parameters.
    Cluster(ClusterError),
    /// The stretch parameter `k` must satisfy `k ≥ 1` (Theorem 1.1).
    InvalidStretch { k: f64 },
    /// An explicit `β` override must be positive and finite.
    InvalidBetaOverride { beta: f64 },
    /// The chosen algorithm requires unit weights (Algorithm 2 / the
    /// unweighted oracle path); route weighted graphs to the weighted
    /// variant.
    RequiresUnitWeights { algorithm: &'static str },
    /// Hopset parameters violate the constraints of Theorem 4.4
    /// (`ε ∈ (0,1)`, `δ > 1`, `0 < γ₁ < γ₂ < 1`, `k_conf ≥ 1`).
    InvalidHopsetParams { reason: String },
    /// The band exponent `η` of §5 / Appendix C must lie in `(0, 1)`.
    InvalidEta { eta: f64 },
    /// The hop-target exponent `α` of Appendix C must lie in `(0, 1)`.
    InvalidAlpha { alpha: f64 },
    /// The well-separated variant needs explicit weight levels.
    MissingLevels,
    /// A builder setting was supplied that the selected variant never
    /// reads (e.g. `beta_override` on the weighted spanner) — reported
    /// instead of silently ignoring the configuration.
    SettingNotApplicable {
        setting: &'static str,
        kind: &'static str,
    },
    /// The input graph must be connected for this run
    /// (`require_connected(true)` was set) but has `components` pieces.
    Disconnected { components: usize },
    /// The weight ratio `w_max/w_min` exceeds the polynomial bound the
    /// construction assumes (Corollary 5.4); apply Appendix B's
    /// [`crate::hopset::WeightClassDecomposition`] first, or opt out with
    /// `allow_large_weights(true)`.
    WeightRangeTooLarge { ratio: f64, bound: f64 },
    /// A sharded oracle needs at least one shard.
    InvalidShardCount { shards: usize },
    /// A component handed to [`crate::shard::ShardedOracle::assemble`]
    /// does not match the plan's shape (shard count, per-shard vertex
    /// count, overlay vertex count, epoch-vector length).
    ShardShapeMismatch {
        what: &'static str,
        expected: usize,
        found: usize,
    },
    /// The overlay was computed from a different per-shard epoch vector
    /// than the shard oracles being stitched — a mixed-epoch stitch,
    /// rejected at assembly so it can never serve an answer.
    ShardEpochMismatch { expected: Vec<u64>, found: Vec<u64> },
}

impl fmt::Display for PshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PshError::Cluster(e) => write!(f, "{e}"),
            PshError::InvalidStretch { k } => {
                write!(f, "stretch parameter k must be >= 1, got {k}")
            }
            PshError::InvalidBetaOverride { beta } => {
                write!(f, "beta override must be positive and finite, got {beta}")
            }
            PshError::RequiresUnitWeights { algorithm } => {
                write!(
                    f,
                    "{algorithm} requires unit weights; use the weighted variant"
                )
            }
            PshError::InvalidHopsetParams { reason } => {
                write!(f, "invalid hopset parameters: {reason}")
            }
            PshError::InvalidEta { eta } => {
                write!(f, "eta must be in (0,1), got {eta}")
            }
            PshError::InvalidAlpha { alpha } => {
                write!(f, "need 0 < alpha < 1, got {alpha}")
            }
            PshError::MissingLevels => {
                write!(f, "well-separated spanner needs explicit weight levels")
            }
            PshError::SettingNotApplicable { setting, kind } => {
                write!(f, "{setting} has no effect on the {kind} variant")
            }
            PshError::Disconnected { components } => {
                write!(
                    f,
                    "input graph must be connected, found {components} components"
                )
            }
            PshError::WeightRangeTooLarge { ratio, bound } => {
                write!(
                    f,
                    "weight ratio {ratio:.3e} exceeds the polynomial bound {bound:.3e}; \
                     apply the Appendix B weight-class decomposition first"
                )
            }
            PshError::InvalidShardCount { shards } => {
                write!(f, "shard count must be >= 1, got {shards}")
            }
            PshError::ShardShapeMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "sharded assembly: {what} expected {expected}, got {found}"
                )
            }
            PshError::ShardEpochMismatch { expected, found } => {
                write!(
                    f,
                    "mixed-epoch stitch rejected: shard epochs are {expected:?} \
                     but the overlay was built from {found:?}"
                )
            }
        }
    }
}

impl std::error::Error for PshError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PshError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for PshError {
    fn from(e: ClusterError) -> Self {
        PshError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_substrings() {
        // the deprecated wrappers panic with these Displays; existing
        // should_panic tests match on the substrings
        let e = PshError::RequiresUnitWeights {
            algorithm: "unweighted_spanner",
        };
        assert!(e.to_string().contains("requires unit weights"));
        let e = PshError::InvalidStretch { k: 0.0 };
        assert!(e.to_string().contains("must be >= 1"));
    }

    #[test]
    fn cluster_errors_convert_and_chain() {
        let e: PshError = ClusterError::InvalidBeta { beta: -1.0 }.into();
        assert!(matches!(e, PshError::Cluster(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
