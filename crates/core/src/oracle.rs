//! The end-to-end `(1+ε)`-approximate shortest-path oracle of Theorem 1.2.
//!
//! **Preprocess** (`O(m·poly log n)` work): build a hopset. Unweighted
//! graphs need a single Algorithm 4 hopset; weighted graphs get one per
//! distance band (§5). Graphs whose weight ratio exceeds `n³` should be
//! routed through Appendix B's [`super::hopset::WeightClassDecomposition`]
//! first (exposed separately; the oracle asserts the poly-bounded case).
//!
//! **Query** (`O(m/ε)` work, `O(h)`-round depth): h-hop-limited parallel
//! Bellman–Ford over `E ∪ E'` — \[KS97\]'s procedure. Batches of pairs are
//! served through [`ApproxShortestPaths::query_batch`], which fans the
//! pairs across the psh-exec pool; a preprocessed oracle can be saved and
//! reloaded through [`crate::snapshot`], so preprocessing and serving can
//! run as separate processes.
//!
//! ## Storage representations
//!
//! An oracle is **owned** (heap `CsrGraph`/`Hopset`/`ExtraEdges` buffers —
//! what a fresh build or a v1 snapshot decode produces) or **mapped**
//! (every slab borrowed straight out of a `SNAPSHOT_VERSION = 2` region
//! opened through [`psh_graph::SnapshotSource`] — see
//! [`crate::snapshot::load_oracle_v2`]). The two representations answer
//! every query byte-identically, **costs included**, under every
//! [`ExecutionPolicy`]: both route through the same generic hop-limited
//! relaxation, and the mapped slabs are validated at load time to iterate
//! exactly like the owned structures they mirror.

use crate::hopset::rounding::Rounding;
use crate::hopset::unweighted::build_hopset_with_beta0_on;
use crate::hopset::weighted::{build_weighted_hopsets_impl, WeightedHopsets};
use crate::hopset::{Hopset, HopsetParams};
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::traversal::bellman_ford::{hop_limited_pair, hop_limited_pair_on};
use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::{
    CompressedMmapView, CsrGraph, Edge, ExtraSlabsView, GraphView, MmapView, VertexId, Weight, INF,
};
use psh_pram::Cost;
use rand::Rng;

/// A preprocessed graph that answers approximate distance queries.
pub struct ApproxShortestPaths {
    pub(crate) repr: Repr,
}

impl std::fmt::Debug for ApproxShortestPaths {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxShortestPaths")
            .field("n", &self.graph().n())
            .field("m", &self.graph().m())
            .field("mapped", &matches!(self.repr, Repr::Mapped(_)))
            .field("hopset_size", &self.hopset_size())
            .field("hop_budget", &self.hop_budget())
            .finish()
    }
}

/// Storage representation: owned heap buffers or borrowed snapshot slabs.
pub(crate) enum Repr {
    Owned { graph: CsrGraph, mode: Mode },
    Mapped(MappedOracle),
}

pub(crate) enum Mode {
    Unweighted {
        hopset: Hopset,
        extra: psh_graph::traversal::bellman_ford::ExtraEdges,
        /// Hop budget for the worst case `d = n` (queries stop early at
        /// the Bellman–Ford fixpoint anyway).
        h_max: usize,
    },
    Weighted {
        hopsets: WeightedHopsets,
    },
}

/// An oracle whose every slab lives inside one shared
/// [`psh_graph::SnapshotSource`] — the query-time face of a v2 snapshot.
/// Constructed only by the v2 loader, which validates all slabs.
pub(crate) struct MappedOracle {
    pub(crate) graph: MappedGraph,
    pub(crate) mode: MappedMode,
}

/// The adjacency representation a mapped oracle serves from: plain CSR
/// slabs or the delta-compressed gap stream (see
/// [`psh_graph::compress`]). Query paths match on this **once per
/// call** and run the whole traversal on the concrete view — per-`next`
/// enum dispatch inside relaxation loops costs real throughput, so the
/// branch lives outside the loop.
pub(crate) enum MappedGraph {
    Plain(MmapView),
    Compressed(CompressedMmapView),
}

impl MappedGraph {
    #[inline]
    pub(crate) fn edges(&self) -> &[Edge] {
        match self {
            MappedGraph::Plain(g) => g.edges(),
            MappedGraph::Compressed(g) => g.edges(),
        }
    }
}

/// Hopset bookkeeping a mapped oracle carries verbatim (the counts the
/// v1 body stores; needed to re-save as v1 and to answer size queries).
pub(crate) struct MappedHopset {
    pub(crate) star_count: usize,
    pub(crate) clique_count: usize,
    pub(crate) levels: usize,
    /// Shortcut edges in construction order, inside the source region.
    pub(crate) edges: MappedEdges,
    /// Compiled adjacency over the same edges.
    pub(crate) extra: ExtraSlabsView,
}

/// A `&[Edge]` living inside the snapshot region, kept alive by the
/// views that share its `Arc` (every `MappedHopset` also holds an
/// `ExtraSlabsView` over the same source).
pub(crate) struct MappedEdges {
    ptr: *const Edge,
    len: usize,
}

// SAFETY: points into the immutable SnapshotSource kept alive by the
// sibling ExtraSlabsView/MmapView Arcs in the same MappedOracle.
unsafe impl Send for MappedEdges {}
unsafe impl Sync for MappedEdges {}

impl MappedEdges {
    pub(crate) fn of(edges: &[Edge]) -> MappedEdges {
        MappedEdges {
            ptr: edges.as_ptr(),
            len: edges.len(),
        }
    }

    #[inline]
    pub(crate) fn get(&self) -> &[Edge] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

pub(crate) enum MappedMode {
    Unweighted {
        hopset: MappedHopset,
        h_max: usize,
    },
    Weighted {
        eta: f64,
        epsilon: f64,
        bands: Vec<MappedBand>,
    },
}

/// One distance band of a mapped weighted oracle: the rounded graph as a
/// view (offsets/targets/eids shared with the base graph; weights and
/// edge records band-specific) plus the band's hopset.
pub(crate) struct MappedBand {
    pub(crate) d: u64,
    pub(crate) rounding: Rounding,
    pub(crate) h: usize,
    pub(crate) graph: MappedGraph,
    pub(crate) hopset: MappedHopset,
}

/// Borrowed view of an oracle's base graph, independent of how the
/// oracle is stored. All representations expose the same vertex/edge
/// counts and the same canonical sorted edge list.
#[derive(Clone, Copy)]
pub enum OracleGraph<'a> {
    /// Heap-owned (fresh build or v1 snapshot decode).
    Owned(&'a CsrGraph),
    /// Borrowed from a mapped v2 snapshot.
    Mapped(&'a MmapView),
    /// Borrowed from a mapped v2 snapshot with delta-compressed
    /// adjacency.
    MappedCompressed(&'a CompressedMmapView),
}

impl OracleGraph<'_> {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        match self {
            OracleGraph::Owned(g) => g.n(),
            OracleGraph::Mapped(g) => g.n(),
            OracleGraph::MappedCompressed(g) => g.n(),
        }
    }

    /// Number of (undirected, canonical) edges.
    pub fn m(&self) -> usize {
        match self {
            OracleGraph::Owned(g) => g.m(),
            OracleGraph::Mapped(g) => g.m(),
            OracleGraph::MappedCompressed(g) => g.m(),
        }
    }

    /// The canonical sorted edge list.
    pub fn edges(&self) -> &[Edge] {
        match self {
            OracleGraph::Owned(g) => g.edges(),
            OracleGraph::Mapped(g) => g.edges(),
            OracleGraph::MappedCompressed(g) => g.edges(),
        }
    }
}

impl std::fmt::Debug for OracleGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("mapped", &matches!(self, OracleGraph::Mapped(_)))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Uniform "parts" access — both snapshot writers (v1 and v2) consume the
// oracle through these borrowed views, so any representation can be
// re-saved in any version (that is what makes migration a pure
// re-encode and keeps round trips byte-identical).
// ---------------------------------------------------------------------------

/// Borrowed fields of one hopset, whatever its storage.
pub(crate) struct HopsetParts<'a> {
    pub(crate) n: usize,
    pub(crate) star_count: usize,
    pub(crate) clique_count: usize,
    pub(crate) levels: usize,
    pub(crate) edges: &'a [Edge],
}

/// Borrowed fields of one weighted band, whatever its storage.
pub(crate) struct BandParts<'a> {
    pub(crate) d: u64,
    pub(crate) what: f64,
    pub(crate) h: usize,
    pub(crate) hopset: HopsetParts<'a>,
    /// The band's rounded edge list (same `(u, v)` pairs as the base
    /// graph, weights `⌈w/ŵ⌉`).
    pub(crate) band_edges: &'a [Edge],
}

/// Borrowed mode-specific fields, whatever the storage.
pub(crate) enum ModeParts<'a> {
    Unweighted {
        h_max: usize,
        hopset: HopsetParts<'a>,
    },
    Weighted {
        eta: f64,
        epsilon: f64,
        bands: Vec<BandParts<'a>>,
    },
}

impl MappedHopset {
    fn parts(&self, n: usize) -> HopsetParts<'_> {
        HopsetParts {
            n,
            star_count: self.star_count,
            clique_count: self.clique_count,
            levels: self.levels,
            edges: self.edges.get(),
        }
    }
}

pub(crate) fn owned_hopset_parts(h: &Hopset) -> HopsetParts<'_> {
    HopsetParts {
        n: h.n,
        star_count: h.star_count,
        clique_count: h.clique_count,
        levels: h.levels,
        edges: &h.edges,
    }
}

/// A query answer with diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryResult {
    /// The `(1+ε)`-approximate distance (`f64::INFINITY` if disconnected).
    pub distance: f64,
    /// Exact distance is never larger than this answer.
    pub upper_bound: bool,
}

impl ApproxShortestPaths {
    /// Corollary 4.5's preprocessing body — preconditions are validated by
    /// [`OracleBuilder`] before this runs.
    pub(crate) fn build_unweighted_impl<R: Rng>(
        exec: &Executor,
        g: &CsrGraph,
        params: &HopsetParams,
        rng: &mut R,
    ) -> (Self, Cost) {
        let beta0 = params.beta0(g.n());
        let (hopset, cost) = build_hopset_with_beta0_on(exec, g, params, beta0, rng);
        let extra = hopset.to_extra_edges();
        let h_max = params.hop_bound(g.n(), beta0, g.n() as u64);
        (
            ApproxShortestPaths {
                repr: Repr::Owned {
                    graph: g.clone(),
                    mode: Mode::Unweighted {
                        hopset,
                        extra,
                        h_max,
                    },
                },
            },
            cost,
        )
    }

    /// Corollary 5.4's preprocessing body — preconditions are validated by
    /// [`OracleBuilder`] before this runs.
    pub(crate) fn build_weighted_impl<R: Rng>(
        exec: &Executor,
        g: &CsrGraph,
        params: &HopsetParams,
        eta: f64,
        rng: &mut R,
    ) -> (Self, Cost) {
        let (hopsets, cost) =
            build_weighted_hopsets_impl(exec, g, params, eta, params.beta0_weighted(g.n()), rng);
        (
            ApproxShortestPaths {
                repr: Repr::Owned {
                    graph: g.clone(),
                    mode: Mode::Weighted { hopsets },
                },
            },
            cost,
        )
    }

    /// Approximate `s`–`t` distance.
    pub fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost) {
        if s == t {
            return (
                QueryResult {
                    distance: 0.0,
                    upper_bound: true,
                },
                Cost::ZERO,
            );
        }
        let (distance, cost) = match &self.repr {
            Repr::Owned { graph, mode } => match mode {
                Mode::Unweighted { extra, h_max, .. } => {
                    let (d, _, cost) = hop_limited_pair(graph, Some(extra), s, t, *h_max);
                    (if d == INF { f64::INFINITY } else { d as f64 }, cost)
                }
                Mode::Weighted { hopsets } => hopsets.query(s, t),
            },
            Repr::Mapped(m) => match &m.mode {
                MappedMode::Unweighted { hopset, h_max } => {
                    let (d, _, cost) = match &m.graph {
                        MappedGraph::Plain(g) => {
                            hop_limited_pair_on(g, Some(hopset.extra.view()), s, t, *h_max)
                        }
                        MappedGraph::Compressed(g) => {
                            hop_limited_pair_on(g, Some(hopset.extra.view()), s, t, *h_max)
                        }
                    };
                    (if d == INF { f64::INFINITY } else { d as f64 }, cost)
                }
                MappedMode::Weighted { bands, .. } => {
                    // the exact analogue of WeightedHopsets::query: min of
                    // the unrounded per-band values, costs par-composed
                    let mut best = f64::INFINITY;
                    let mut cost = Cost::ZERO;
                    for band in bands {
                        let (d, _, c) = match &band.graph {
                            MappedGraph::Plain(g) => {
                                hop_limited_pair_on(g, Some(band.hopset.extra.view()), s, t, band.h)
                            }
                            MappedGraph::Compressed(g) => {
                                hop_limited_pair_on(g, Some(band.hopset.extra.view()), s, t, band.h)
                            }
                        };
                        cost = cost.par(c);
                        if d != INF {
                            best = best.min(band.rounding.unround(d));
                        }
                    }
                    (best, cost)
                }
            },
        };
        (
            QueryResult {
                distance,
                upper_bound: true,
            },
            cost,
        )
    }

    /// Answer a batch of `s`–`t` queries, fanned across the psh-exec pool.
    ///
    /// The serving entry point: pairs are independent, so they map onto
    /// [`Executor::par_map`] with one pair per work unit. Answers come
    /// back **in input order** and are byte-identical for every
    /// [`ExecutionPolicy`] (the pool's determinism contract); the returned
    /// [`Cost`] composes the per-pair costs in parallel — work is the
    /// *sum* over all pairs, depth the maximum — and is likewise identical
    /// for every policy. Out-of-range vertex ids panic, exactly as
    /// [`ApproxShortestPaths::query`] does; validate untrusted workloads
    /// against [`CsrGraph::n`] first.
    pub fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        let exec = policy.executor();
        let answered = exec.par_map(pairs, 1, |&(s, t)| self.query(s, t));
        let cost = Cost::par_all(answered.iter().map(|(_, c)| *c));
        (answered.into_iter().map(|(r, _)| r).collect(), cost)
    }

    /// Exact reference distance (Dijkstra) — the verification oracle.
    pub fn query_exact(&self, s: VertexId, t: VertexId) -> Weight {
        match &self.repr {
            Repr::Owned { graph, .. } => dijkstra_pair(graph, s, t),
            Repr::Mapped(m) => match &m.graph {
                MappedGraph::Plain(g) => dijkstra_pair(g, s, t),
                MappedGraph::Compressed(g) => dijkstra_pair(g, s, t),
            },
        }
    }

    /// Number of hopset edges backing this oracle.
    pub fn hopset_size(&self) -> usize {
        match &self.repr {
            Repr::Owned { mode, .. } => match mode {
                Mode::Unweighted { hopset, .. } => hopset.size(),
                Mode::Weighted { hopsets } => hopsets.total_size(),
            },
            Repr::Mapped(m) => match &m.mode {
                MappedMode::Unweighted { hopset, .. } => hopset.edges.get().len(),
                MappedMode::Weighted { bands, .. } => {
                    bands.iter().map(|b| b.hopset.edges.get().len()).sum()
                }
            },
        }
    }

    /// The underlying graph, as a representation-independent view.
    pub fn graph(&self) -> OracleGraph<'_> {
        match &self.repr {
            Repr::Owned { graph, .. } => OracleGraph::Owned(graph),
            Repr::Mapped(m) => match &m.graph {
                MappedGraph::Plain(g) => OracleGraph::Mapped(g),
                MappedGraph::Compressed(g) => OracleGraph::MappedCompressed(g),
            },
        }
    }

    /// Whether this oracle serves straight off a mapped/loaded snapshot
    /// region (v2) rather than owned heap buffers.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped(_))
    }

    /// The query-time hop budget (unweighted mode).
    pub fn hop_budget(&self) -> Option<usize> {
        match &self.repr {
            Repr::Owned { mode, .. } => match mode {
                Mode::Unweighted { h_max, .. } => Some(*h_max),
                Mode::Weighted { .. } => None,
            },
            Repr::Mapped(m) => match &m.mode {
                MappedMode::Unweighted { h_max, .. } => Some(*h_max),
                MappedMode::Weighted { .. } => None,
            },
        }
    }

    /// Mode-specific fields as borrowed parts (snapshot writers' view).
    pub(crate) fn mode_parts(&self) -> ModeParts<'_> {
        let n = self.graph().n();
        match &self.repr {
            Repr::Owned { mode, .. } => match mode {
                Mode::Unweighted { hopset, h_max, .. } => ModeParts::Unweighted {
                    h_max: *h_max,
                    hopset: owned_hopset_parts(hopset),
                },
                Mode::Weighted { hopsets } => ModeParts::Weighted {
                    eta: hopsets.eta,
                    epsilon: hopsets.epsilon,
                    bands: hopsets
                        .bands
                        .iter()
                        .map(|b| BandParts {
                            d: b.d,
                            what: b.rounding.what,
                            h: b.h,
                            hopset: owned_hopset_parts(&b.hopset),
                            band_edges: b.graph.edges(),
                        })
                        .collect(),
                },
            },
            Repr::Mapped(m) => match &m.mode {
                MappedMode::Unweighted { hopset, h_max } => ModeParts::Unweighted {
                    h_max: *h_max,
                    hopset: hopset.parts(n),
                },
                MappedMode::Weighted {
                    eta,
                    epsilon,
                    bands,
                } => ModeParts::Weighted {
                    eta: *eta,
                    epsilon: *epsilon,
                    bands: bands
                        .iter()
                        .map(|b| BandParts {
                            d: b.d,
                            what: b.rounding.what,
                            h: b.h,
                            hopset: b.hopset.parts(n),
                            band_edges: b.graph.edges(),
                        })
                        .collect(),
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, OracleMode, Seed};
    use psh_graph::generators;

    fn build_unweighted(g: &CsrGraph, params: &HopsetParams, seed: u64) -> ApproxShortestPaths {
        OracleBuilder::new()
            .params(*params)
            .mode(OracleMode::Unweighted)
            .seed(Seed(seed))
            .build(g)
            .unwrap()
            .artifact
    }

    fn test_params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    #[test]
    fn unweighted_oracle_is_sound_and_accurate() {
        let g = generators::grid(16, 16);
        let oracle = build_unweighted(&g, &test_params(), 1);
        for (s, t) in [(0u32, 255u32), (0, 15), (17, 200), (100, 101)] {
            let (r, _) = oracle.query(s, t);
            let exact = oracle.query_exact(s, t) as f64;
            assert!(r.distance >= exact, "undershoot at ({s},{t})");
            assert!(
                r.distance <= 2.0 * exact,
                "({s},{t}): {} vs exact {exact}",
                r.distance
            );
        }
    }

    #[test]
    fn weighted_oracle_is_sound() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::grid(10, 10);
        let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
        let oracle = OracleBuilder::new()
            .params(test_params())
            .eta(0.4)
            .mode(OracleMode::Weighted)
            .seed(Seed(2))
            .build(&g)
            .unwrap()
            .artifact;
        for (s, t) in [(0u32, 99u32), (5, 60), (42, 43)] {
            let (r, _) = oracle.query(s, t);
            let exact = oracle.query_exact(s, t) as f64;
            assert!(r.distance >= exact - 1e-9);
            assert!(r.distance <= 3.0 * exact, "({s},{t}): {}", r.distance);
        }
    }

    #[test]
    fn self_and_disconnected_queries() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let oracle = build_unweighted(&g, &test_params(), 3);
        assert_eq!(oracle.query(2, 2).0.distance, 0.0);
        assert!(oracle.query(0, 3).0.distance.is_infinite());
    }

    #[test]
    fn query_batch_matches_single_queries_for_every_policy() {
        let g = generators::grid(12, 12);
        let oracle = build_unweighted(&g, &test_params(), 5);
        let pairs: Vec<(u32, u32)> = (0..48).map(|i| (i, 143 - i)).collect();
        let singles: Vec<(QueryResult, Cost)> =
            pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
        let expect_cost = Cost::par_all(singles.iter().map(|(_, c)| *c));
        let expect: Vec<QueryResult> = singles.into_iter().map(|(r, _)| r).collect();
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 2 },
            ExecutionPolicy::Parallel { threads: 4 },
        ] {
            let (answers, cost) = oracle.query_batch(&pairs, policy);
            assert_eq!(answers, expect, "{policy}");
            assert_eq!(cost, expect_cost, "{policy}");
        }
        // empty batches are fine
        let (none, zero) = oracle.query_batch(&[], ExecutionPolicy::Sequential);
        assert!(none.is_empty());
        assert_eq!(zero, Cost::ZERO);
    }

    #[test]
    fn hop_budget_exposed_for_unweighted() {
        let g = generators::path(64);
        let oracle = build_unweighted(&g, &test_params(), 4);
        assert!(oracle.hop_budget().is_some());
        assert!(!oracle.is_mapped(), "fresh builds are owned");
    }
}
