//! The end-to-end `(1+ε)`-approximate shortest-path oracle of Theorem 1.2.
//!
//! **Preprocess** (`O(m·poly log n)` work): build a hopset. Unweighted
//! graphs need a single Algorithm 4 hopset; weighted graphs get one per
//! distance band (§5). Graphs whose weight ratio exceeds `n³` should be
//! routed through Appendix B's [`super::hopset::WeightClassDecomposition`]
//! first (exposed separately; the oracle asserts the poly-bounded case).
//!
//! **Query** (`O(m/ε)` work, `O(h)`-round depth): h-hop-limited parallel
//! Bellman–Ford over `E ∪ E'` — \[KS97\]'s procedure. Batches of pairs are
//! served through [`ApproxShortestPaths::query_batch`], which fans the
//! pairs across the psh-exec pool; a preprocessed oracle can be saved and
//! reloaded through [`crate::snapshot`], so preprocessing and serving can
//! run as separate processes.

use crate::hopset::unweighted::build_hopset_with_beta0_on;
use crate::hopset::weighted::{build_weighted_hopsets_impl, WeightedHopsets};
use crate::hopset::{Hopset, HopsetParams};
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::traversal::bellman_ford::{hop_limited_pair, ExtraEdges};
use psh_graph::traversal::dijkstra::dijkstra_pair;
use psh_graph::{CsrGraph, VertexId, Weight, INF};
use psh_pram::Cost;
use rand::Rng;

/// A preprocessed graph that answers approximate distance queries.
pub struct ApproxShortestPaths {
    pub(crate) graph: CsrGraph,
    pub(crate) mode: Mode,
}

impl std::fmt::Debug for ApproxShortestPaths {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxShortestPaths")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("hopset_size", &self.hopset_size())
            .field("hop_budget", &self.hop_budget())
            .finish()
    }
}

pub(crate) enum Mode {
    Unweighted {
        hopset: Hopset,
        extra: ExtraEdges,
        /// Hop budget for the worst case `d = n` (queries stop early at
        /// the Bellman–Ford fixpoint anyway).
        h_max: usize,
    },
    Weighted {
        hopsets: WeightedHopsets,
    },
}

/// A query answer with diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryResult {
    /// The `(1+ε)`-approximate distance (`f64::INFINITY` if disconnected).
    pub distance: f64,
    /// Exact distance is never larger than this answer.
    pub upper_bound: bool,
}

impl ApproxShortestPaths {
    /// Corollary 4.5's preprocessing body — preconditions are validated by
    /// [`OracleBuilder`] before this runs.
    pub(crate) fn build_unweighted_impl<R: Rng>(
        exec: &Executor,
        g: &CsrGraph,
        params: &HopsetParams,
        rng: &mut R,
    ) -> (Self, Cost) {
        let beta0 = params.beta0(g.n());
        let (hopset, cost) = build_hopset_with_beta0_on(exec, g, params, beta0, rng);
        let extra = hopset.to_extra_edges();
        let h_max = params.hop_bound(g.n(), beta0, g.n() as u64);
        (
            ApproxShortestPaths {
                graph: g.clone(),
                mode: Mode::Unweighted {
                    hopset,
                    extra,
                    h_max,
                },
            },
            cost,
        )
    }

    /// Corollary 5.4's preprocessing body — preconditions are validated by
    /// [`OracleBuilder`] before this runs.
    pub(crate) fn build_weighted_impl<R: Rng>(
        exec: &Executor,
        g: &CsrGraph,
        params: &HopsetParams,
        eta: f64,
        rng: &mut R,
    ) -> (Self, Cost) {
        let (hopsets, cost) =
            build_weighted_hopsets_impl(exec, g, params, eta, params.beta0_weighted(g.n()), rng);
        (
            ApproxShortestPaths {
                graph: g.clone(),
                mode: Mode::Weighted { hopsets },
            },
            cost,
        )
    }

    /// Approximate `s`–`t` distance.
    pub fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost) {
        if s == t {
            return (
                QueryResult {
                    distance: 0.0,
                    upper_bound: true,
                },
                Cost::ZERO,
            );
        }
        match &self.mode {
            Mode::Unweighted { extra, h_max, .. } => {
                let (d, _, cost) = hop_limited_pair(&self.graph, Some(extra), s, t, *h_max);
                (
                    QueryResult {
                        distance: if d == INF { f64::INFINITY } else { d as f64 },
                        upper_bound: true,
                    },
                    cost,
                )
            }
            Mode::Weighted { hopsets } => {
                let (d, cost) = hopsets.query(s, t);
                (
                    QueryResult {
                        distance: d,
                        upper_bound: true,
                    },
                    cost,
                )
            }
        }
    }

    /// Answer a batch of `s`–`t` queries, fanned across the psh-exec pool.
    ///
    /// The serving entry point: pairs are independent, so they map onto
    /// [`Executor::par_map`] with one pair per work unit. Answers come
    /// back **in input order** and are byte-identical for every
    /// [`ExecutionPolicy`] (the pool's determinism contract); the returned
    /// [`Cost`] composes the per-pair costs in parallel — work is the
    /// *sum* over all pairs, depth the maximum — and is likewise identical
    /// for every policy. Out-of-range vertex ids panic, exactly as
    /// [`ApproxShortestPaths::query`] does; validate untrusted workloads
    /// against [`CsrGraph::n`] first.
    pub fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        let exec = policy.executor();
        let answered = exec.par_map(pairs, 1, |&(s, t)| self.query(s, t));
        let cost = Cost::par_all(answered.iter().map(|(_, c)| *c));
        (answered.into_iter().map(|(r, _)| r).collect(), cost)
    }

    /// Exact reference distance (Dijkstra) — the verification oracle.
    pub fn query_exact(&self, s: VertexId, t: VertexId) -> Weight {
        dijkstra_pair(&self.graph, s, t)
    }

    /// Number of hopset edges backing this oracle.
    pub fn hopset_size(&self) -> usize {
        match &self.mode {
            Mode::Unweighted { hopset, .. } => hopset.size(),
            Mode::Weighted { hopsets } => hopsets.total_size(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The query-time hop budget (unweighted mode).
    pub fn hop_budget(&self) -> Option<usize> {
        match &self.mode {
            Mode::Unweighted { h_max, .. } => Some(*h_max),
            Mode::Weighted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, OracleMode, Seed};
    use psh_graph::generators;

    fn build_unweighted(g: &CsrGraph, params: &HopsetParams, seed: u64) -> ApproxShortestPaths {
        OracleBuilder::new()
            .params(*params)
            .mode(OracleMode::Unweighted)
            .seed(Seed(seed))
            .build(g)
            .unwrap()
            .artifact
    }

    fn test_params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    #[test]
    fn unweighted_oracle_is_sound_and_accurate() {
        let g = generators::grid(16, 16);
        let oracle = build_unweighted(&g, &test_params(), 1);
        for (s, t) in [(0u32, 255u32), (0, 15), (17, 200), (100, 101)] {
            let (r, _) = oracle.query(s, t);
            let exact = oracle.query_exact(s, t) as f64;
            assert!(r.distance >= exact, "undershoot at ({s},{t})");
            assert!(
                r.distance <= 2.0 * exact,
                "({s},{t}): {} vs exact {exact}",
                r.distance
            );
        }
    }

    #[test]
    fn weighted_oracle_is_sound() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let base = generators::grid(10, 10);
        let g = generators::with_uniform_weights(&base, 1, 20, &mut rng);
        let oracle = OracleBuilder::new()
            .params(test_params())
            .eta(0.4)
            .mode(OracleMode::Weighted)
            .seed(Seed(2))
            .build(&g)
            .unwrap()
            .artifact;
        for (s, t) in [(0u32, 99u32), (5, 60), (42, 43)] {
            let (r, _) = oracle.query(s, t);
            let exact = oracle.query_exact(s, t) as f64;
            assert!(r.distance >= exact - 1e-9);
            assert!(r.distance <= 3.0 * exact, "({s},{t}): {}", r.distance);
        }
    }

    #[test]
    fn self_and_disconnected_queries() {
        let g = CsrGraph::from_unit_edges(4, [(0, 1)]);
        let oracle = build_unweighted(&g, &test_params(), 3);
        assert_eq!(oracle.query(2, 2).0.distance, 0.0);
        assert!(oracle.query(0, 3).0.distance.is_infinite());
    }

    #[test]
    fn query_batch_matches_single_queries_for_every_policy() {
        let g = generators::grid(12, 12);
        let oracle = build_unweighted(&g, &test_params(), 5);
        let pairs: Vec<(u32, u32)> = (0..48).map(|i| (i, 143 - i)).collect();
        let singles: Vec<(QueryResult, Cost)> =
            pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
        let expect_cost = Cost::par_all(singles.iter().map(|(_, c)| *c));
        let expect: Vec<QueryResult> = singles.into_iter().map(|(r, _)| r).collect();
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 2 },
            ExecutionPolicy::Parallel { threads: 4 },
        ] {
            let (answers, cost) = oracle.query_batch(&pairs, policy);
            assert_eq!(answers, expect, "{policy}");
            assert_eq!(cost, expect_cost, "{policy}");
        }
        // empty batches are fine
        let (none, zero) = oracle.query_batch(&[], ExecutionPolicy::Sequential);
        assert!(none.is_empty());
        assert_eq!(zero, Cost::ZERO);
    }

    #[test]
    fn hop_budget_exposed_for_unweighted() {
        let g = generators::path(64);
        let oracle = build_unweighted(&g, &test_params(), 4);
        assert!(oracle.hop_budget().is_some());
    }
}
