//! # psh-core — Improved Parallel Algorithms for Spanners and Hopsets
//!
//! The primary contribution of Miller, Peng, Vladu & Xu (SPAA 2015),
//! reproduced in full:
//!
//! * [`spanner`] — **Theorem 1.1**: `O(k)`-stretch spanners of expected
//!   size `O(n^{1+1/k})` on unweighted graphs (Algorithm 2) and
//!   `O(n^{1+1/k} log k)` on weighted graphs (Algorithm 3 + the `O(log k)`
//!   well-separated grouping), in `O(m)` work.
//! * [`hopset`] — **Theorem 1.2**: `(ε·log n, h, O(n))`-hopsets built by
//!   recursive exponential start time clustering with star and clique
//!   shortcuts on large clusters (Algorithm 4), the weighted extension via
//!   Klein–Subramanian rounding (§5), the polynomially-bounded-weight
//!   preprocessing (Appendix B), and the low-depth limited hopsets
//!   (Appendix C).
//! * [`oracle`] — the end-to-end `(1+ε)`-approximate shortest-path oracle
//!   of Theorem 1.2: preprocess once, then answer `s`–`t` queries (or
//!   whole batches, fanned across the psh-exec pool) with an
//!   `h`-hop-limited parallel Bellman–Ford.
//! * [`snapshot`] — versioned binary snapshots of hopsets, spanners, and
//!   full oracles, so preprocessing and serving run as separate
//!   processes.
//! * [`service`] — the concurrent serving front: an [`Arc`]-shared
//!   oracle behind an admission queue that coalesces simultaneously
//!   arriving queries into `query_batch` calls, with per-request latency
//!   capture and [`service::ServiceStats`].
//!
//! [`Arc`]: std::sync::Arc
//!
//! Everything is instrumented with the [`psh_pram::Cost`] work/depth model
//! and is deterministic given an RNG seed.

pub mod api;
pub mod distance;
pub mod error;
pub mod hopset;
pub mod oracle;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod spanner;

pub use api::{
    HopsetArtifact, HopsetBuilder, HopsetKind, OracleBuilder, OracleMode, Run, Seed,
    SpannerBuilder, SpannerKind,
};
pub use distance::{DistanceOracle, OracleDescriptor};
pub use error::PshError;
pub use hopset::{Hopset, HopsetParams};
pub use oracle::ApproxShortestPaths;
pub use service::{CacheConfig, OracleService, ServiceConfig, ServiceStats};
pub use shard::{
    OverlayPart, ShardPlan, ShardedOracle, ShardedOracleBuilder, ShardedParts, ShardedReloadReport,
    ShardedReloader,
};
pub use spanner::Spanner;
