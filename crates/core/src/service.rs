//! Concurrent query serving: many clients, one shared oracle.
//!
//! Every [`DistanceOracle`] — the monolithic [`ApproxShortestPaths`], the
//! partitioned [`crate::shard::ShardedOracle`] — is immutable after
//! preprocessing, so any number of threads may query it simultaneously;
//! but a thread-per-query free-for-all wastes the batch fan-out that
//! [`DistanceOracle::query_batch`] already provides. [`OracleService`]
//! closes that gap with an **admission queue**: concurrently-arriving
//! queries are coalesced into batches and served together through
//! `query_batch` on the psh-exec pool. The service holds its oracle as an
//! `Arc<dyn DistanceOracle>`, so one serving stack (this type, the
//! `psh-net` wire tier, the bins) covers every oracle shape.
//!
//! ## The leader–follower protocol
//!
//! Every call to [`OracleService::query`] enqueues its pair and then either
//!
//! * becomes the **leader** (no batch is in flight): it drains up to
//!   [`ServiceConfig::max_batch`] queued requests — its own plus everything
//!   that accumulated while the previous batch was being served — runs one
//!   `query_batch`, publishes the answers, and wakes all waiters; or
//! * **follows**: a leader is already serving, so the caller blocks until
//!   woken, then either finds its answer published or takes leadership of
//!   the requests that queued up in the meantime.
//!
//! Batch boundaries therefore depend on arrival timing — but **answers do
//! not**: `query_batch` maps every pair independently through
//! [`DistanceOracle::query`], so each answer is byte-identical to a
//! single-threaded `query(s, t)` no matter how requests were coalesced,
//! which thread served them, or which [`ExecutionPolicy`] fanned the batch
//! out (the `service_stress` integration suite pins this at 32 client
//! threads).
//!
//! ## The answer cache
//!
//! [`ServiceConfig::cache`] (off by default) adds a bounded, seeded
//! direct-mapped answer cache in front of the admission queue: each
//! `(s, t)` pair hashes — keyed by [`CacheConfig::seed`] — to one of
//! [`CacheConfig::capacity`] slots, and a colliding insert simply evicts
//! the slot's previous occupant. The eviction choice is thus a pure
//! function of the seed, never of arrival order, so a cache-enabled
//! service stays deterministic: hits return the exact [`QueryResult`]
//! the oracle published earlier (answers are immutable, so a hit is
//! byte-identical to a recomputation), misses take the normal
//! leader–follower path, and [`ServiceStats::cache_hits`] counts the
//! short-circuits. Cache hits record a 0 ms latency sample — they never
//! touch the queue.
//!
//! ## Epochs and zero-downtime hot swap
//!
//! A service is born at **epoch 0** serving the oracle it was built with.
//! [`OracleService::swap_oracle`] installs a replacement oracle — e.g. one
//! rebuilt for a mutated graph — and bumps the epoch, *without stopping
//! the service*: clients keep querying throughout. The swap is atomic at
//! a **batch boundary**: each leader captures the current `(oracle,
//! epoch)` under the admission lock at the moment it drains its batch, so
//! every batch — and therefore every request — is answered wholly by one
//! epoch's oracle; no request ever sees a torn epoch. A batch already in
//! flight when the swap lands completes on the epoch it captured; batches
//! drained afterwards serve the new one.
//!
//! **The answer cache is flushed on swap.** Cached answers are only
//! immutable *within* an epoch — after a swap the same `(s, t)` pair may
//! have a different distance — so [`OracleService::swap_oracle`] clears
//! every slot, and a batch that captured the pre-swap oracle skips cache
//! publication if the epoch changed while it was in flight (its answers
//! are still delivered to their waiters, who were admitted against that
//! epoch). This rule is load-bearing: without it a stale cached answer
//! could survive an epoch change indefinitely, since seeded eviction is
//! keyed per pair, not per oracle.
//!
//! [`OracleService::query_attributed`] returns the epoch alongside the
//! answer, which is what the swap-storm stress tests use to byte-check
//! every answer against its epoch's reference oracle.
//!
//! ## Thread-safety audit
//!
//! Sharing one oracle across OS threads is sound because the whole serving
//! state is built from plain owned buffers: `CsrGraph`, [`Hopset`],
//! `ExtraEdges`, and [`WeightedHopsets`] are `Vec`s of POD values with no
//! interior mutability, so `ApproxShortestPaths` is auto-`Send + Sync` in
//! its owned representation. The mapped representation (a v2 snapshot
//! served in place through `MmapView`/`ExtraSlabsView`) additionally
//! holds raw slices into a shared, immutable, never-remapped
//! [`SnapshotSource`] region — those views carry manual
//! `unsafe impl Send/Sync` whose soundness argument lives next to the
//! impls in `psh-graph`. The compile-time assertions at the bottom of
//! this module turn all of that into a build failure if a future
//! refactor introduces an `Rc`/`RefCell`/unshareable field anywhere in
//! the oracle, hopset, or snapshot types.
//!
//! ```
//! use psh_core::api::{OracleBuilder, Seed};
//! use psh_core::service::{OracleService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let g = psh_graph::generators::grid(8, 8);
//! let run = OracleBuilder::new().seed(Seed(7)).build(&g).unwrap();
//! let service = Arc::new(OracleService::new(run.artifact, ServiceConfig::default()));
//!
//! let svc = Arc::clone(&service);
//! let worker = std::thread::spawn(move || svc.query(0, 63));
//! let here = service.query(63, 0);
//! assert_eq!(worker.join().unwrap(), here, "symmetric pair, same distance");
//! let stats = service.stats();
//! assert_eq!(stats.served, 2);
//! ```

use crate::distance::DistanceOracle;
use crate::hopset::weighted::{EstimateBand, WeightedHopsets};
use crate::hopset::{Hopset, HopsetParams};
use crate::oracle::{ApproxShortestPaths, QueryResult};
use crate::snapshot::OracleMeta;
use crate::spanner::Spanner;
use psh_exec::ExecutionPolicy;
use psh_graph::traversal::bellman_ford::ExtraEdges;
use psh_graph::{CsrGraph, ExtraSlabsView, MmapView, SnapshotSource, VertexId};
use psh_pram::Cost;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Nearest-rank percentile (`p ∈ [0, 100]`) of a sample — the serving
/// layer reports p50/p99/p999 request latency with this. Empty samples
/// give 0. (Hosted here so both [`ServiceStats`] and the experiment
/// harness share one implementation; `psh_bench::stats::percentile`
/// re-exports it.)
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The bounded answer cache (see the module docs): a direct-mapped slot
/// array keyed by a seeded hash of the query pair, with
/// overwrite-on-collision ("seeded eviction") replacement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Number of slots. Memory is `capacity` × one pair + one
    /// [`QueryResult`] (~32 bytes). Must be at least 1.
    pub capacity: usize,
    /// Seed of the slot hash — fixes which of two colliding pairs
    /// evicts the other, independent of arrival order.
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// How an [`OracleService`] serves its batches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Execution policy for each coalesced `query_batch` call (default:
    /// [`ExecutionPolicy::from_env`]). Answers are byte-identical for
    /// every policy; only wall-clock changes.
    pub policy: ExecutionPolicy,
    /// Largest batch one leader drains at a time (default 256). Requests
    /// beyond the cap stay queued for the next leader, bounding per-batch
    /// latency under bursts. Must be at least 1.
    pub max_batch: usize,
    /// Optional answer cache (default `None` — off). Turning it on
    /// changes wall-clock only, never answers: hits replay a published
    /// [`QueryResult`] verbatim.
    pub cache: Option<CacheConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: ExecutionPolicy::from_env(),
            max_batch: 256,
            cache: None,
        }
    }
}

impl ServiceConfig {
    /// Config with an explicit execution policy (default batch cap).
    pub fn with_policy(policy: ExecutionPolicy) -> Self {
        ServiceConfig {
            policy,
            ..Default::default()
        }
    }
}

/// The slot a pair occupies in a cache of `cfg.capacity` slots — a
/// splitmix64-style finalizer over the packed pair, keyed by the seed.
fn cache_slot(cfg: &CacheConfig, pair: (VertexId, VertexId)) -> usize {
    let mut x = cfg.seed ^ (((pair.0 as u64) << 32) | pair.1 as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % cfg.capacity as u64) as usize
}

/// A point-in-time snapshot of a service's serving statistics.
///
/// Latency is measured per request, from admission (the moment
/// [`OracleService::query`] enqueued the pair) to answer publication —
/// so it includes queueing delay, which is the number a client actually
/// experiences under contention. Percentiles use [`percentile`]
/// (nearest-rank); `qps` divides served requests by the span from the
/// first admission to the last publication.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests answered so far.
    pub served: u64,
    /// `query_batch` calls issued (≥ 1 request each).
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// First-admission → last-publication span, in seconds.
    pub elapsed_s: f64,
    /// Requests per second over `elapsed_s` (0 until something is served).
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency, milliseconds.
    pub p999_ms: f64,
    /// Work/depth spent answering, composed batch-after-batch.
    pub total_cost: Cost,
    /// Requests short-circuited by the answer cache (a subset of
    /// `served`; always 0 when [`ServiceConfig::cache`] is `None`).
    pub cache_hits: u64,
    /// Raw per-request latencies in publication order (for custom
    /// aggregation; cleared by [`OracleService::reset_stats`]).
    pub latencies_ms: Vec<f64>,
}

impl ServiceStats {
    /// Build a stats snapshot from raw per-request latency samples — the
    /// hook for **connection-level** collectors that observe latencies
    /// without owning an `OracleService`: the `psh-net` server's
    /// per-connection windows and the `psh-client` load driver report
    /// ServiceStats-compatible numbers through this, so wire-side and
    /// in-process measurements stay comparable column for column.
    ///
    /// `served` is `latencies_ms.len()`; `qps` divides it by
    /// `elapsed_s` (0 when the span is empty); percentiles use
    /// [`percentile`] (nearest-rank), exactly as [`OracleService::stats`]
    /// does.
    pub fn from_samples(
        latencies_ms: Vec<f64>,
        elapsed_s: f64,
        batches: u64,
        largest_batch: usize,
        total_cost: Cost,
    ) -> ServiceStats {
        let served = latencies_ms.len() as u64;
        ServiceStats {
            served,
            batches,
            largest_batch,
            elapsed_s,
            qps: if elapsed_s > 0.0 {
                served as f64 / elapsed_s
            } else {
                0.0
            },
            p50_ms: percentile(&latencies_ms, 50.0),
            p99_ms: percentile(&latencies_ms, 99.0),
            p999_ms: percentile(&latencies_ms, 99.9),
            total_cost,
            // wire-side collectors see only latencies; cache state is a
            // service-internal detail they cannot observe
            cache_hits: 0,
            latencies_ms,
        }
    }
}

/// One queued request: its pair, admission time, and ticket id.
struct Pending {
    id: u64,
    pair: (VertexId, VertexId),
    admitted: Instant,
}

/// Everything behind the service mutex: the admission queue, the
/// published answers, the leader flag, and the latency log. A single
/// mutex keeps the check-then-wait transitions race-free (no lost
/// wakeups between "is my answer published?" and the condvar wait).
struct Shared {
    /// The oracle answering the current epoch's batches. Swapped whole
    /// by [`OracleService::swap_oracle`]; leaders clone the `Arc` (and
    /// record the epoch) at drain time, so a swap never tears a batch.
    oracle: Arc<dyn DistanceOracle>,
    /// Bumped by every swap. Answers are attributed to the epoch whose
    /// oracle computed them.
    epoch: u64,
    next_id: u64,
    queue: VecDeque<Pending>,
    /// Published answers, tagged with the epoch that computed them.
    answers: HashMap<u64, (QueryResult, u64)>,
    /// Tickets whose serving leader panicked (e.g. an out-of-range
    /// vertex id in the coalesced batch): their waiters re-raise the
    /// failure instead of blocking forever.
    abandoned: HashSet<u64>,
    /// Tickets whose waiter unwound while the ticket was in a leader's
    /// in-flight batch: the publisher drops their answers instead of
    /// storing them for a collector that will never come.
    dead: HashSet<u64>,
    leader_active: bool,
    /// The answer cache's slot array (empty when the cache is off).
    /// Living under the same mutex as the queue keeps lookup-then-admit
    /// atomic; answers are immutable so stale reads cannot exist.
    cache: Vec<Option<((VertexId, VertexId), QueryResult)>>,
    // --- stats ---
    served: u64,
    batches: u64,
    largest_batch: usize,
    first_admission: Option<Instant>,
    last_publication: Option<Instant>,
    total_cost: Cost,
    cache_hits: u64,
    latencies_ms: Vec<f64>,
}

impl Shared {
    fn new(oracle: Arc<dyn DistanceOracle>, cache_slots: usize) -> Shared {
        Shared {
            oracle,
            epoch: 0,
            next_id: 0,
            queue: VecDeque::new(),
            answers: HashMap::new(),
            abandoned: HashSet::new(),
            dead: HashSet::new(),
            leader_active: false,
            cache: vec![None; cache_slots],
            served: 0,
            batches: 0,
            largest_batch: 0,
            first_admission: None,
            last_publication: None,
            total_cost: Cost::ZERO,
            cache_hits: 0,
            latencies_ms: Vec::new(),
        }
    }

    fn admit(&mut self, pair: (VertexId, VertexId)) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let now = Instant::now();
        self.first_admission.get_or_insert(now);
        self.queue.push_back(Pending {
            id,
            pair,
            admitted: now,
        });
        id
    }
}

/// A thread-safe serving front for one shared, immutable oracle.
///
/// Clone-free sharing: wrap the service in an [`Arc`] and hand it to as
/// many client threads as you like — see the module docs for the
/// coalescing protocol and the determinism contract.
pub struct OracleService {
    config: ServiceConfig,
    shared: Mutex<Shared>,
    wakeup: Condvar,
}

impl std::fmt::Debug for OracleService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleService")
            .field("oracle", &self.oracle().descriptor())
            .field("epoch", &self.epoch())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl OracleService {
    /// Wrap a preprocessed oracle — any [`DistanceOracle`] shape — for
    /// concurrent serving. This is the one way to stand up a serving
    /// stack; everything above it (wire tier, bins) is oracle-agnostic.
    pub fn new<O: DistanceOracle + 'static>(oracle: O, config: ServiceConfig) -> OracleService {
        OracleService::from_arc(Arc::new(oracle), config)
    }

    /// Wrap an oracle that is already shared (e.g. also referenced by a
    /// snapshot writer or a second service with a different policy).
    pub fn from_arc(oracle: Arc<dyn DistanceOracle>, config: ServiceConfig) -> OracleService {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        if let Some(cache) = &config.cache {
            assert!(cache.capacity >= 1, "cache capacity must be at least 1");
        }
        let cache_slots = config.cache.map_or(0, |c| c.capacity);
        OracleService {
            config,
            shared: Mutex::new(Shared::new(oracle, cache_slots)),
            wakeup: Condvar::new(),
        }
    }

    /// The oracle answering the current epoch. The returned handle stays
    /// valid (and keeps answering consistently) even if the service swaps
    /// to a newer oracle afterwards — it just stops being "current".
    pub fn oracle(&self) -> Arc<dyn DistanceOracle> {
        Arc::clone(&self.shared.lock().unwrap().oracle)
    }

    /// The current epoch: 0 at construction, +1 per
    /// [`OracleService::swap_oracle`].
    pub fn epoch(&self) -> u64 {
        self.shared.lock().unwrap().epoch
    }

    /// Install a replacement oracle and enter the next epoch, without
    /// stopping the service — the zero-downtime half of a hot swap (the
    /// rebuild half runs wherever the caller likes, typically a
    /// background thread, while the old epoch keeps serving).
    ///
    /// The swap takes effect at a **batch boundary**: batches drained
    /// after this call serve the new oracle; a batch in flight completes
    /// on the oracle it captured and skips cache publication. The answer
    /// cache is flushed here — see the module docs for why that rule is
    /// mandatory. Returns the new epoch.
    pub fn swap_oracle(&self, oracle: Arc<dyn DistanceOracle>) -> u64 {
        let mut sh = self.shared.lock().unwrap();
        sh.oracle = oracle;
        sh.epoch += 1;
        for slot in sh.cache.iter_mut() {
            *slot = None;
        }
        sh.epoch
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Answer one `s`–`t` query, blocking until served.
    ///
    /// The answer is byte-identical to
    /// [`ApproxShortestPaths::query`]`(s, t)` regardless of how the
    /// request was coalesced. Out-of-range vertex ids panic as `query`
    /// does — and because requests coalesce, that panic also re-raises
    /// in any client whose request shared the poisoned batch (the
    /// service itself stays live for everything else); validate
    /// untrusted input against [`CsrGraph::n`] first.
    pub fn query(&self, s: VertexId, t: VertexId) -> QueryResult {
        self.query_attributed(s, t).0
    }

    /// [`query`](OracleService::query), plus the epoch whose oracle
    /// computed the answer. Swap-storm verification uses this to check
    /// every answer byte-for-byte against its epoch's reference oracle;
    /// plain serving can ignore the attribution.
    pub fn query_attributed(&self, s: VertexId, t: VertexId) -> (QueryResult, u64) {
        let mut sh = self.shared.lock().unwrap();
        if let Some(hit) = self.cache_lookup(&mut sh, (s, t)) {
            return hit;
        }
        let id = sh.admit((s, t));
        self.wait_for(sh, &[id])
            .pop()
            .expect("one ticket, one answer")
    }

    /// Probe the answer cache for `pair` under the admission lock. A hit
    /// counts as a served request with zero queueing latency, attributed
    /// to the current epoch (the flush-on-swap rule guarantees every
    /// cached answer was computed by it).
    fn cache_lookup(
        &self,
        sh: &mut Shared,
        pair: (VertexId, VertexId),
    ) -> Option<(QueryResult, u64)> {
        let cfg = self.config.cache?;
        match sh.cache[cache_slot(&cfg, pair)] {
            Some((cached_pair, answer)) if cached_pair == pair => {
                let now = Instant::now();
                sh.first_admission.get_or_insert(now);
                sh.last_publication = Some(now);
                sh.served += 1;
                sh.cache_hits += 1;
                sh.latencies_ms.push(0.0);
                Some((answer, sh.epoch))
            }
            _ => None,
        }
    }

    /// Publish `pair`'s answer into the cache (overwriting whatever pair
    /// currently hashes to the same slot — the seeded eviction).
    fn cache_insert(&self, sh: &mut Shared, pair: (VertexId, VertexId), answer: QueryResult) {
        if let Some(cfg) = self.config.cache {
            sh.cache[cache_slot(&cfg, pair)] = Some((pair, answer));
        }
    }

    /// Answer a batch of queries submitted as one unit, blocking until
    /// every pair is served. Answers come back **in input order**; under
    /// concurrency the unit may be coalesced with other clients' requests
    /// (or split across `max_batch` boundaries) without changing any
    /// answer.
    pub fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<QueryResult> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut sh = self.shared.lock().unwrap();
        // Split hits from misses under one lock hold so the admission
        // order matches the input order of the missing pairs.
        let mut out: Vec<Option<QueryResult>> = Vec::with_capacity(pairs.len());
        let mut miss_pos = Vec::new();
        let mut miss_ids = Vec::new();
        for (i, &pair) in pairs.iter().enumerate() {
            match self.cache_lookup(&mut sh, pair) {
                Some((hit, _epoch)) => out.push(Some(hit)),
                None => {
                    out.push(None);
                    miss_pos.push(i);
                    miss_ids.push(sh.admit(pair));
                }
            }
        }
        if !miss_ids.is_empty() {
            let answers = self.wait_for(sh, &miss_ids);
            for (pos, (answer, _epoch)) in miss_pos.into_iter().zip(answers) {
                out[pos] = Some(answer);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every position is a hit or an answered miss"))
            .collect()
    }

    /// Block until every ticket in `ids` has a published answer, taking
    /// leadership of queued batches whenever no leader is active. Returns
    /// the answers in ticket order.
    fn wait_for<'a>(
        &'a self,
        mut sh: std::sync::MutexGuard<'a, Shared>,
        ids: &[u64],
    ) -> Vec<(QueryResult, u64)> {
        // Whole-ticket-lifetime unwind guard: if this waiter panics (its
        // batch was poisoned, or its own leader serve panicked), every
        // one of its tickets is reclaimed — removed from the queue,
        // `answers`, and `abandoned`, or marked `dead` if a leader has
        // it in flight — so a long-lived service cannot leak per-panic
        // state. Forgotten on the success path.
        let cleanup = TicketCleanup {
            service: self,
            ids: ids.to_vec(),
        };
        loop {
            if ids.iter().any(|id| sh.abandoned.contains(id)) {
                drop(sh);
                // `cleanup` reclaims all of this waiter's tickets
                panic!(
                    "OracleService: the leader serving this request's batch panicked \
                     (was an out-of-range vertex id coalesced into it?)"
                );
            }
            if ids.iter().all(|id| sh.answers.contains_key(id)) {
                let out = ids
                    .iter()
                    .map(|id| sh.answers.remove(id).expect("checked above"))
                    .collect();
                std::mem::forget(cleanup);
                return out;
            }
            if !sh.leader_active && !sh.queue.is_empty() {
                // Become the leader: drain one batch, then serve it with
                // the admission lock *released* — arrivals during the
                // service window queue up and form the next batch (that
                // concurrency is the coalescing window).
                sh.leader_active = true;
                let take = sh.queue.len().min(self.config.max_batch);
                let batch: Vec<Pending> = sh.queue.drain(..take).collect();
                // Capture the batch's epoch while the lock pins it: the
                // whole batch is served by this one oracle even if a
                // swap lands while the serve is in flight — that is the
                // "swap at a batch boundary, never a torn epoch" rule.
                let oracle = Arc::clone(&sh.oracle);
                let batch_epoch = sh.epoch;
                drop(sh);

                let pairs: Vec<(VertexId, VertexId)> = batch.iter().map(|p| p.pair).collect();
                // If query_batch panics (out-of-range ids), this guard
                // releases leadership, marks the drained tickets
                // abandoned (their waiters re-raise instead of blocking
                // forever), and wakes everyone, so requests outside the
                // poisoned batch still make progress.
                let reset = LeaderReset {
                    service: self,
                    batch_ids: batch.iter().map(|p| p.id).collect(),
                };
                let (answers, cost) = oracle.query_batch(&pairs, self.config.policy);
                std::mem::forget(reset);

                sh = self.shared.lock().unwrap();
                let published = Instant::now();
                let mut live = 0u64;
                // The flush-on-swap rule's second half: if the epoch
                // moved while this batch was in flight, its answers are
                // stale for *future* requests and must not repopulate
                // the freshly flushed cache (waiters still get them —
                // they were admitted against the captured epoch).
                let cacheable = sh.epoch == batch_epoch;
                for (pending, answer) in batch.iter().zip(&answers) {
                    if cacheable {
                        // answers are immutable within an epoch, so even
                        // a dead ticket's answer is safe to cache
                        self.cache_insert(&mut sh, pending.pair, *answer);
                    }
                    if sh.dead.remove(&pending.id) {
                        // the waiter unwound mid-flight; nobody will
                        // ever collect this answer
                        continue;
                    }
                    live += 1;
                    sh.answers.insert(pending.id, (*answer, batch_epoch));
                    sh.latencies_ms
                        .push(published.duration_since(pending.admitted).as_secs_f64() * 1e3);
                }
                sh.served += live;
                sh.batches += 1;
                sh.largest_batch = sh.largest_batch.max(batch.len());
                sh.last_publication = Some(published);
                sh.total_cost = sh.total_cost.then(cost);
                sh.leader_active = false;
                self.wakeup.notify_all();
                // Loop: our tickets may have been in the batch we just
                // served — or still be queued behind the max_batch cap.
                continue;
            }
            sh = self.wakeup.wait(sh).unwrap();
        }
    }

    /// Snapshot the serving statistics accumulated since construction (or
    /// the last [`OracleService::reset_stats`]).
    pub fn stats(&self) -> ServiceStats {
        let sh = self.shared.lock().unwrap();
        let elapsed_s = match (sh.first_admission, sh.last_publication) {
            (Some(a), Some(b)) => b.duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        ServiceStats {
            served: sh.served,
            batches: sh.batches,
            largest_batch: sh.largest_batch,
            elapsed_s,
            qps: if elapsed_s > 0.0 {
                sh.served as f64 / elapsed_s
            } else {
                0.0
            },
            p50_ms: percentile(&sh.latencies_ms, 50.0),
            p99_ms: percentile(&sh.latencies_ms, 99.0),
            p999_ms: percentile(&sh.latencies_ms, 99.9),
            total_cost: sh.total_cost,
            cache_hits: sh.cache_hits,
            latencies_ms: sh.latencies_ms.clone(),
        }
    }

    /// Clear the statistics (e.g. between benchmark scenario cells).
    /// In-flight requests are unaffected; their latencies land in the
    /// fresh window. Cached answers are kept — they are immutable within
    /// an epoch, so carrying them across stats windows cannot change any
    /// future answer (only `cache_hits` counts from zero again). The
    /// epoch and oracle are untouched: invalidation is tied to
    /// [`OracleService::swap_oracle`], never to stats housekeeping.
    pub fn reset_stats(&self) {
        let mut sh = self.shared.lock().unwrap();
        sh.served = 0;
        sh.batches = 0;
        sh.largest_batch = 0;
        sh.first_admission = None;
        sh.last_publication = None;
        sh.total_cost = Cost::ZERO;
        sh.cache_hits = 0;
        sh.latencies_ms.clear();
    }
}

/// Unwind guard: if a leader panics mid-service, release leadership,
/// mark every ticket of the drained batch abandoned (its waiters
/// re-raise the failure — the batch's answers are unrecoverable and
/// must not deadlock), and wake everyone so requests outside the
/// poisoned batch keep flowing. `mem::forget` on the success path makes
/// this a no-op normally.
struct LeaderReset<'a> {
    service: &'a OracleService,
    batch_ids: Vec<u64>,
}

impl Drop for LeaderReset<'_> {
    fn drop(&mut self) {
        if let Ok(mut sh) = self.service.shared.lock() {
            for id in &self.batch_ids {
                // a ticket whose waiter already unwound needs no
                // abandonment marker — nobody is left to observe it
                if !sh.dead.remove(id) {
                    sh.abandoned.insert(*id);
                }
            }
            sh.leader_active = false;
        }
        self.service.wakeup.notify_all();
    }
}

/// Unwind guard for a *waiter*: reclaims every ticket the unwinding
/// client submitted, wherever it currently is — still queued (removed
/// before any leader drains it), already answered or abandoned (entries
/// dropped), or in a leader's in-flight batch (marked dead so the
/// publisher discards the answer). `mem::forget` on the success path.
struct TicketCleanup<'a> {
    service: &'a OracleService,
    ids: Vec<u64>,
}

impl Drop for TicketCleanup<'_> {
    fn drop(&mut self) {
        if let Ok(mut sh) = self.service.shared.lock() {
            for id in &self.ids {
                if let Some(pos) = sh.queue.iter().position(|p| p.id == *id) {
                    sh.queue.remove(pos);
                } else if sh.answers.remove(id).is_none() && !sh.abandoned.remove(id) {
                    sh.dead.insert(*id);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The Send/Sync audit (see the module docs). These are compile-time
// proofs: if any field of the serving stack loses auto-Send/Sync (an
// `Rc`, a `RefCell`, a raw pointer), the workspace stops building here
// with a named type instead of failing obscurely at a spawn site.
// ---------------------------------------------------------------------------

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    // the shared oracle and everything inside it
    assert_send_sync::<ApproxShortestPaths>();
    assert_send_sync::<CsrGraph>();
    assert_send_sync::<Hopset>();
    assert_send_sync::<ExtraEdges>();
    assert_send_sync::<WeightedHopsets>();
    assert_send_sync::<EstimateBand>();
    assert_send_sync::<Spanner>();
    // the mapped (zero-copy) representation: raw slices into a shared
    // immutable snapshot region, shareable by the manual unsafe impls
    assert_send_sync::<SnapshotSource>();
    assert_send_sync::<MmapView>();
    assert_send_sync::<ExtraSlabsView>();
    // snapshot provenance travels between build and serve threads
    assert_send_sync::<OracleMeta>();
    assert_send_sync::<HopsetParams>();
    assert_send_sync::<QueryResult>();
    assert_send_sync::<Cost>();
    // and the service itself is shared by reference across clients
    assert_send_sync::<OracleService>();
    assert_send_sync::<ServiceConfig>();
    assert_send_sync::<CacheConfig>();
    assert_send_sync::<ServiceStats>();
    // the hot-swap path hands graphs, deltas, and replacement oracles
    // between the rebuild thread and the serving threads
    assert_send_sync::<psh_graph::GraphDelta>();
    assert_send_sync::<Arc<ApproxShortestPaths>>();
    // the trait-object serving surface and the sharded implementation
    assert_send_sync::<Arc<dyn DistanceOracle>>();
    assert_send_sync::<crate::distance::OracleDescriptor>();
    assert_send_sync::<crate::shard::ShardPlan>();
    assert_send_sync::<crate::shard::ShardedOracle>();
    assert_send_sync::<Arc<crate::shard::ShardedOracle>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, Seed};
    use psh_graph::generators;

    fn test_oracle(seed: u64) -> ApproxShortestPaths {
        let g = generators::grid(10, 10);
        OracleBuilder::new()
            .params(HopsetParams {
                epsilon: 0.5,
                delta: 1.5,
                gamma1: 0.25,
                gamma2: 0.75,
                k_conf: 1.0,
            })
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .artifact
    }

    #[test]
    fn single_threaded_service_matches_direct_queries() {
        let oracle = test_oracle(1);
        let service = OracleService::new(oracle, ServiceConfig::default());
        for (s, t) in [(0u32, 99u32), (5, 50), (42, 42), (99, 0)] {
            let expect = service.oracle().query(s, t).0;
            assert_eq!(service.query(s, t), expect, "({s},{t})");
        }
        let stats = service.stats();
        assert_eq!(stats.served, 4);
        assert_eq!(stats.batches, 4, "uncontended queries serve one-by-one");
        assert_eq!(stats.latencies_ms.len(), 4);
        assert!(stats.qps > 0.0);
        assert!(stats.p50_ms <= stats.p99_ms && stats.p99_ms <= stats.p999_ms);
    }

    #[test]
    fn batch_submission_preserves_input_order() {
        let oracle = test_oracle(2);
        let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, 99 - i)).collect();
        let expect: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
        let service = OracleService::new(oracle, ServiceConfig::default());
        assert_eq!(service.query_batch(&pairs), expect);
        assert!(service.query_batch(&[]).is_empty());
        let stats = service.stats();
        assert_eq!(stats.served, 40);
        assert_eq!(stats.batches, 1, "one submission, one coalesced batch");
        assert_eq!(stats.largest_batch, 40);
    }

    #[test]
    fn max_batch_splits_oversized_submissions() {
        let oracle = test_oracle(3);
        let pairs: Vec<(u32, u32)> = (0..10u32).map(|i| (i, i + 80)).collect();
        let expect: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
        let service = OracleService::new(
            oracle,
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 4,
                cache: None,
            },
        );
        assert_eq!(service.query_batch(&pairs), expect);
        let stats = service.stats();
        assert_eq!(stats.served, 10);
        assert_eq!(stats.batches, 3, "10 requests under a cap of 4");
        assert_eq!(stats.largest_batch, 4);
    }

    #[test]
    fn concurrent_clients_coalesce_and_stay_byte_identical() {
        let oracle = test_oracle(4);
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|i| (i % 100, (i * 7) % 100)).collect();
        let expect: Vec<QueryResult> = pairs.iter().map(|&(s, t)| oracle.query(s, t).0).collect();
        let service = OracleService::new(
            oracle,
            ServiceConfig::with_policy(ExecutionPolicy::Parallel { threads: 2 }),
        );
        let answers: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..8usize {
                let service = &service;
                let pairs = &pairs;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    for (i, &(s, t)) in pairs.iter().enumerate().skip(worker).step_by(8) {
                        got.push((i, service.query(s, t)));
                    }
                    got
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for (i, answer) in answers {
            assert_eq!(answer, expect[i], "query #{i}");
        }
        let stats = service.stats();
        assert_eq!(stats.served, 64);
        assert!(stats.batches <= 64);
        service.reset_stats();
        assert_eq!(service.stats(), ServiceStats::default());
    }

    #[test]
    fn from_samples_matches_a_live_service_column_for_column() {
        let oracle = test_oracle(7);
        let service = OracleService::new(oracle, ServiceConfig::default());
        for (s, t) in [(0u32, 99u32), (5, 50), (42, 42)] {
            service.query(s, t);
        }
        let live = service.stats();
        let rebuilt = ServiceStats::from_samples(
            live.latencies_ms.clone(),
            live.elapsed_s,
            live.batches,
            live.largest_batch,
            live.total_cost,
        );
        assert_eq!(rebuilt, live, "the hook reproduces the live snapshot");
        let empty = ServiceStats::from_samples(Vec::new(), 0.0, 0, 0, Cost::ZERO);
        assert_eq!(empty, ServiceStats::default());
    }

    #[test]
    fn stats_percentiles_use_nearest_rank() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 500.0);
        assert_eq!(percentile(&xs, 99.0), 990.0);
        // 99.9/100 * 1000 lands just above 999 in binary floating point,
        // so nearest-rank rounds up to the maximum — fine for a tail
        // percentile (it can only over-report, never under-report).
        assert_eq!(percentile(&xs, 99.9), 1000.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn leader_panic_abandons_its_batch_but_the_service_stays_live() {
        let oracle = test_oracle(6);
        let service = OracleService::new(
            oracle,
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 4,
                cache: None,
            },
        );
        // An out-of-range id panics inside the leader's query_batch; the
        // unwind guards must release leadership so later requests are
        // served (not deadlocked), and reclaim every ticket the
        // panicking client submitted — including the two still queued
        // beyond the max_batch cap.
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.query_batch(&[(0, 1), (0, 10_000), (1, 2), (2, 3), (3, 4), (4, 5)])
        }));
        assert!(poisoned.is_err(), "out-of-range id must panic");
        {
            let sh = service.shared.lock().unwrap();
            assert!(sh.queue.is_empty(), "queued tickets reclaimed");
            assert!(sh.answers.is_empty(), "no orphaned answers");
            assert!(sh.abandoned.is_empty(), "no lingering abandonment markers");
            assert!(sh.dead.is_empty(), "no lingering dead markers");
        }
        let expect = service.oracle().query(3, 42).0;
        assert_eq!(service.query(3, 42), expect, "service is still live");
        assert_eq!(service.stats().served, 1, "only the live query counts");
    }

    #[test]
    fn answer_cache_hits_are_byte_identical_under_every_policy() {
        // one pair list with heavy repetition, served by a cached and an
        // uncached service under Seq and Par{4}: all four answer streams
        // must be identical, and the cached services must actually hit
        let pairs: Vec<(u32, u32)> = (0..96u32).map(|i| (i % 7, (i * 3) % 11 + 60)).collect();
        let mut streams = Vec::new();
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 4 },
        ] {
            for cache in [None, Some(CacheConfig::default())] {
                let service = OracleService::new(
                    test_oracle(8),
                    ServiceConfig {
                        policy,
                        max_batch: 16,
                        cache,
                    },
                );
                // mix the entry points: singles first (warming the
                // cache), then the whole list as one batch submission
                let mut got: Vec<QueryResult> =
                    pairs.iter().map(|&(s, t)| service.query(s, t)).collect();
                got.extend(service.query_batch(&pairs));
                let stats = service.stats();
                assert_eq!(stats.served, 2 * pairs.len() as u64);
                if cache.is_some() {
                    // 7 × 11 = 77 possible pairs, 192 requests: most repeat
                    assert!(
                        stats.cache_hits > 100,
                        "expected heavy hitting, got {}",
                        stats.cache_hits
                    );
                } else {
                    assert_eq!(stats.cache_hits, 0);
                }
                streams.push(got);
            }
        }
        for s in &streams[1..] {
            assert_eq!(s, &streams[0], "cache and policy must not change answers");
        }
    }

    #[test]
    fn answer_cache_eviction_is_bounded_and_seeded() {
        // capacity 1: every insert evicts the previous occupant, so two
        // alternating pairs never both hit — but answers stay correct
        let service = OracleService::new(
            test_oracle(9),
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 16,
                cache: Some(CacheConfig {
                    capacity: 1,
                    seed: 42,
                }),
            },
        );
        let expect_a = service.oracle().query(0, 99).0;
        let expect_b = service.oracle().query(1, 98).0;
        for _ in 0..4 {
            assert_eq!(service.query(0, 99), expect_a);
            assert_eq!(service.query(1, 98), expect_b);
        }
        let stats = service.stats();
        assert_eq!(stats.served, 8);
        assert_eq!(stats.cache_hits, 0, "alternation defeats a 1-slot cache");
        // repeating one pair back-to-back does hit
        assert_eq!(service.query(0, 99), expect_a);
        assert_eq!(service.query(0, 99), expect_a);
        assert_eq!(service.stats().cache_hits, 1);
        // reset_stats zeroes the counter but keeps the cached answer
        service.reset_stats();
        assert_eq!(service.query(0, 99), expect_a);
        let stats = service.stats();
        assert_eq!((stats.cache_hits, stats.served), (1, 1));
    }

    #[test]
    fn hot_swap_matches_fresh_build_of_the_mutated_graph_under_every_policy() {
        use psh_graph::GraphDelta;
        let g = generators::grid(10, 10);
        let params = HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        };
        let build = |g: &psh_graph::CsrGraph| {
            OracleBuilder::new()
                .params(params)
                .seed(Seed(11))
                .build(g)
                .unwrap()
                .artifact
        };
        let mut delta = GraphDelta::new(100);
        delta.insert(0, 99, 1).unwrap(); // a shortcut that changes distances
        delta.delete(0, 1).unwrap();
        let mutated = g.apply_delta(&delta).unwrap();
        let fresh = build(&mutated); // the reference: a from-scratch build

        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Parallel { threads: 2 },
            ExecutionPolicy::Parallel { threads: 4 },
            ExecutionPolicy::Parallel { threads: 8 },
        ] {
            let service = OracleService::new(
                build(&g),
                ServiceConfig {
                    policy,
                    max_batch: 16,
                    cache: Some(CacheConfig::default()),
                },
            );
            assert_eq!(service.epoch(), 0);
            let pairs: Vec<(u32, u32)> = (0..32u32).map(|i| (i, 99 - i)).collect();
            let before = service.query_batch(&pairs);
            assert_eq!(service.swap_oracle(Arc::new(build(&mutated))), 1);
            assert_eq!(service.epoch(), 1);
            let after = service.query_batch(&pairs);
            let expect: Vec<QueryResult> =
                pairs.iter().map(|&(s, t)| fresh.query(s, t).0).collect();
            assert_eq!(after, expect, "post-swap ≡ fresh build, policy {policy:?}");
            assert_ne!(before, after, "the delta must actually change answers");
            // attribution: post-swap answers carry the new epoch
            assert_eq!(service.query_attributed(0, 99), (fresh.query(0, 99).0, 1));
        }
    }

    #[test]
    fn swap_flushes_the_answer_cache() {
        use psh_graph::GraphDelta;
        let old = test_oracle(12);
        let service = OracleService::new(
            old,
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 16,
                cache: Some(CacheConfig::default()),
            },
        );
        // populate the cache and prove it hits
        let stale = service.query(0, 99);
        assert_eq!(service.query(0, 99), stale);
        assert_eq!(service.stats().cache_hits, 1);

        // swap to an oracle whose (0, 99) answer differs
        let g = generators::grid(10, 10);
        let mut delta = GraphDelta::new(100);
        delta.insert(0, 99, 1).unwrap();
        let mutated = g.apply_delta(&delta).unwrap();
        let fresh = OracleBuilder::new()
            .params(HopsetParams {
                epsilon: 0.5,
                delta: 1.5,
                gamma1: 0.25,
                gamma2: 0.75,
                k_conf: 1.0,
            })
            .seed(Seed(12))
            .build(&mutated)
            .unwrap()
            .artifact;
        let expect = fresh.query(0, 99).0;
        assert_ne!(expect, stale, "the shortcut must change this answer");
        service.swap_oracle(Arc::new(fresh));

        // a stale hit here would return `stale`; the flush forces a miss
        // and the new epoch's bytes
        let hits_before = service.stats().cache_hits;
        assert_eq!(service.query(0, 99), expect);
        assert_eq!(
            service.stats().cache_hits,
            hits_before,
            "post-swap first touch must miss the flushed cache"
        );
        // and the fresh answer is cached for the new epoch
        assert_eq!(service.query(0, 99), expect);
        assert_eq!(service.stats().cache_hits, hits_before + 1);
    }

    #[test]
    #[should_panic(expected = "cache capacity")]
    fn zero_cache_capacity_is_rejected() {
        let _ = OracleService::new(
            test_oracle(5),
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 4,
                cache: Some(CacheConfig {
                    capacity: 0,
                    seed: 0,
                }),
            },
        );
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        let oracle = test_oracle(5);
        let _ = OracleService::new(
            oracle,
            ServiceConfig {
                policy: ExecutionPolicy::Sequential,
                max_batch: 0,
                cache: None,
            },
        );
    }
}
