//! `SNAPSHOT_VERSION = 2` oracle snapshots — the zero-copy layout.
//!
//! A v1 oracle snapshot is a *stream*: loading it decodes every integer,
//! rebuilds each band's rounded graph, and recompiles every hopset's
//! query adjacency. A v2 snapshot is a *region*: all query-time state —
//! including the derived state v1 recomputes — is stored as page-aligned
//! little-endian slabs indexed by a section directory (framework in
//! [`psh_graph::source`]), so loading is one `mmap` (or one bulk read
//! into an aligned buffer) plus validation, and queries run straight off
//! the mapped bytes through [`psh_graph::MmapView`] /
//! [`psh_graph::ExtraSlabsView`].
//!
//! ## Oracle section map
//!
//! On top of the graph sections (`SEC_META` … `SEC_GRAPH_EDGES`, tags
//! 1–6) the oracle kind adds:
//!
//! | tag | payload |
//! |-----|---------|
//! | `7` (`SEC_HOPSET_EDGES`)  | unweighted hopset shortcut edges, construction order, 16 B each |
//! | `8`–`10` (`SEC_EXTRA_*`)  | unweighted hopset adjacency: offsets `(n+1)×u32`, targets `2m'×u32`, weights `2m'×u64` |
//! | `11` (`SEC_BANDS`)        | weighted mode: one 56-byte record per band (`d`, `ŵ`, `h`, star/clique/level/edge counts) |
//! | `0x100 + 16·b + s`        | weighted band `b`, sub-slab `s` (see [`band_tag`]) |
//!
//! `SEC_META` is a fixed-offset scalar block: build params (5×f64), seed,
//! build cost (2×u64), mode, `n`, `m`, then mode-specific scalars.
//!
//! ## Trust model
//!
//! A v2 file is untrusted input, validated at one of two
//! [`psh_graph::Verify`] levels.
//!
//! The serving open path ([`load_oracle_v2`], [`load_oracle_auto`])
//! runs at [`Verify::Bounds`]: scalar rules
//! (the same ones the v1 reader enforces), slab shape agreement,
//! monotone covering offsets, and index max-scans. That is enough to
//! guarantee no query can panic or read out of bounds, and it touches
//! only the index slabs — the weight and edge-record slabs stay cold,
//! which is what makes an `mmap` open lazy and fast.
//!
//! [`Verify::Deep`] ([`verify_oracle_v2`];
//! used by `psh-snap`, [`migrate_oracle_file`], and the corruption
//! suites) additionally pins every *derived* slab to exactly what a v1
//! load would have recomputed: the CSR slabs must replay the canonical
//! fill sweep, each band's weights must equal `⌈w/ŵ⌉` of the base
//! weights, and each hopset adjacency must replay the `ExtraEdges` fill
//! order. A snapshot that deep-validates therefore answers every query
//! — costs included — byte-identically to the v1 decode of the same
//! oracle, under every `ExecutionPolicy`; since the writer is
//! canonical, every snapshot this crate produces deep-validates, so the
//! byte-identity guarantee holds for the `Bounds` serving path on any
//! untampered file. Malformed input is a typed [`SnapshotError`] at
//! either level, never a panic or out-of-bounds access — in-bounds
//! tampering below `Deep`'s radar can change answers, never memory
//! safety.

use crate::hopset::rounding::Rounding;
use crate::hopset::HopsetParams;
use crate::oracle::{
    ApproxShortestPaths, HopsetParts, MappedBand, MappedEdges, MappedGraph, MappedHopset,
    MappedMode, MappedOracle, ModeParts, Repr,
};
use crate::snapshot::{load_oracle, OracleMeta};
use crate::Seed;
use psh_graph::compress::delta_compress_edges;
use psh_graph::io::{SnapshotError, KIND_ORACLE, SNAPSHOT_MAGIC};
use psh_graph::source::{
    cast_edges, cast_u32s, cast_u64s, encode_csr_slabs, encode_extra_slabs, le_edges, le_u64s,
    validate_edges_any_order, SectionTable, SectionWriter, SEC_GRAPH_COMP_DATA,
    SEC_GRAPH_COMP_OFFSETS, SEC_GRAPH_EDGES, SEC_GRAPH_EIDS, SEC_GRAPH_OFFSETS, SEC_GRAPH_TARGETS,
    SEC_GRAPH_WEIGHTS, SEC_META,
};
use psh_graph::{CompressedMmapView, ExtraSlabsView, LoadMode, MmapView, SnapshotSource, Verify};
use psh_pram::Cost;
use std::path::Path;
use std::sync::Arc;

/// Unweighted-mode shortcut edge list (construction order).
pub const SEC_HOPSET_EDGES: u32 = 7;
/// Unweighted-mode hopset adjacency offsets, `(n+1) × u32`.
pub const SEC_EXTRA_OFFSETS: u32 = 8;
/// Unweighted-mode hopset adjacency targets, `2m' × u32`.
pub const SEC_EXTRA_TARGETS: u32 = 9;
/// Unweighted-mode hopset adjacency weights, `2m' × u64`.
pub const SEC_EXTRA_WEIGHTS: u32 = 10;
/// Weighted-mode band directory: one [`BAND_RECORD_BYTES`]-byte record
/// per band.
pub const SEC_BANDS: u32 = 11;

/// Bytes per [`SEC_BANDS`] record: `d`, `ŵ` (f64 bits), `h`,
/// `star_count`, `clique_count`, `levels`, `hopset_edge_count`.
pub const BAND_RECORD_BYTES: usize = 56;

/// First tag of the per-band slab space.
pub const SEC_BAND_BASE: u32 = 0x100;

/// Per-band sub-slab: rounded adjacency slot weights, `2m × u64`.
pub const BAND_SUB_SLOT_WEIGHTS: u32 = 0;
/// Per-band sub-slab: rounded edge records, `m × 16` bytes.
pub const BAND_SUB_EDGES: u32 = 1;
/// Per-band sub-slab: hopset shortcut edges, construction order.
pub const BAND_SUB_HOPSET_EDGES: u32 = 2;
/// Per-band sub-slab: hopset adjacency offsets.
pub const BAND_SUB_EXTRA_OFFSETS: u32 = 3;
/// Per-band sub-slab: hopset adjacency targets.
pub const BAND_SUB_EXTRA_TARGETS: u32 = 4;
/// Per-band sub-slab: hopset adjacency weights.
pub const BAND_SUB_EXTRA_WEIGHTS: u32 = 5;

/// Widest META block: mode-0 files store five scalars past the common
/// prefix (see [`write_meta`]); mode-1 files store three.
const META_LEN_UNWEIGHTED: usize = 128;
const META_LEN_WEIGHTED: usize = 112;

/// Keep the per-band tag space (16 tags per band above
/// [`SEC_BAND_BASE`]) comfortably inside `u32` and reject absurd band
/// counts before allocating anything proportional to them.
const MAX_BANDS: usize = 1 << 16;

/// The section tag of band `band`'s sub-slab `sub`.
pub fn band_tag(band: usize, sub: u32) -> u32 {
    SEC_BAND_BASE + (band as u32) * 16 + sub
}

fn corrupt(what: &'static str, detail: impl std::fmt::Display) -> SnapshotError {
    SnapshotError::Corrupt {
        what,
        detail: detail.to_string(),
    }
}

// ---------------------------------------------------------------------------
// META block
// ---------------------------------------------------------------------------

struct Meta {
    params: HopsetParams,
    seed: Seed,
    build_cost: Cost,
    mode: u64,
    n: usize,
    m: usize,
    /// mode 0: `[h_max, star, clique, levels, hopset_edges]`
    /// mode 1: `[eta bits, epsilon bits, band_count]`
    tail: [u64; 5],
}

fn write_meta(oracle: &ApproxShortestPaths, meta: &OracleMeta, parts: &ModeParts<'_>) -> Vec<u8> {
    let g = oracle.graph();
    let (mode, len) = match parts {
        ModeParts::Unweighted { .. } => (0u64, META_LEN_UNWEIGHTED),
        ModeParts::Weighted { .. } => (1u64, META_LEN_WEIGHTED),
    };
    let mut out = vec![0u8; len];
    let mut put = |at: usize, v: u64| out[at..at + 8].copy_from_slice(&v.to_le_bytes());
    put(0, meta.params.epsilon.to_bits());
    put(8, meta.params.delta.to_bits());
    put(16, meta.params.gamma1.to_bits());
    put(24, meta.params.gamma2.to_bits());
    put(32, meta.params.k_conf.to_bits());
    put(40, meta.seed.0);
    put(48, meta.build_cost.work);
    put(56, meta.build_cost.depth);
    put(64, mode);
    put(72, g.n() as u64);
    put(80, g.m() as u64);
    match parts {
        ModeParts::Unweighted { h_max, hopset } => {
            put(88, *h_max as u64);
            put(96, hopset.star_count as u64);
            put(104, hopset.clique_count as u64);
            put(112, hopset.levels as u64);
            put(120, hopset.edges.len() as u64);
        }
        ModeParts::Weighted {
            eta,
            epsilon,
            bands,
        } => {
            put(88, eta.to_bits());
            put(96, epsilon.to_bits());
            put(104, bands.len() as u64);
        }
    }
    out
}

fn meta_u64(meta: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(meta[at..at + 8].try_into().expect("length checked"))
}

fn parse_meta(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    if bytes.len() < META_LEN_WEIGHTED {
        return Err(corrupt(
            "oracle meta",
            format_args!("meta section of {} bytes is too short", bytes.len()),
        ));
    }
    let params = HopsetParams {
        epsilon: f64::from_bits(meta_u64(bytes, 0)),
        delta: f64::from_bits(meta_u64(bytes, 8)),
        gamma1: f64::from_bits(meta_u64(bytes, 16)),
        gamma2: f64::from_bits(meta_u64(bytes, 24)),
        k_conf: f64::from_bits(meta_u64(bytes, 32)),
    };
    params
        .validate()
        .map_err(|reason| corrupt("hopset parameters", reason))?;
    let seed = Seed(meta_u64(bytes, 40));
    let build_cost = Cost::new(meta_u64(bytes, 48), meta_u64(bytes, 56));
    let mode = meta_u64(bytes, 64);
    let expected_len = match mode {
        0 => META_LEN_UNWEIGHTED,
        1 => META_LEN_WEIGHTED,
        other => {
            return Err(corrupt(
                "mode tag",
                format_args!("expected 0 (unweighted) or 1 (weighted), got {other}"),
            ))
        }
    };
    if bytes.len() != expected_len {
        return Err(corrupt(
            "oracle meta",
            format_args!(
                "mode {mode} meta must be {expected_len} bytes, got {}",
                bytes.len()
            ),
        ));
    }
    let n = meta_u64(bytes, 72);
    if n > u32::MAX as u64 + 1 {
        return Err(corrupt(
            "vertex count",
            format_args!("{n} exceeds the u32 vertex-id space"),
        ));
    }
    let m = meta_u64(bytes, 80);
    let mut tail = [0u64; 5];
    for (i, slot) in tail.iter_mut().enumerate() {
        let at = 88 + i * 8;
        if at + 8 <= bytes.len() {
            *slot = meta_u64(bytes, at);
        }
    }
    let count = |v: u64, what: &'static str| -> Result<usize, SnapshotError> {
        usize::try_from(v).map_err(|_| corrupt(what, format_args!("{v} does not fit in usize")))
    };
    Ok(Meta {
        params,
        seed,
        build_cost,
        mode,
        n: count(n, "vertex count")?,
        m: count(m, "edge count")?,
        tail,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn hopset_sections(
    w: &mut SectionWriter,
    n: usize,
    hopset: &HopsetParts<'_>,
    tags: [u32; 4], // [edges, extra offsets, extra targets, extra weights]
) {
    let extra = encode_extra_slabs(n, hopset.edges);
    w.section(tags[0], le_edges(hopset.edges));
    w.section(tags[1], extra.offsets);
    w.section(tags[2], extra.targets);
    w.section(tags[3], extra.weights);
}

/// Encode an oracle (any representation) as a complete v2 snapshot file.
///
/// The encoding is a pure function of the oracle's logical content:
/// saving a fresh build, a v1 decode of it, or a mapped v2 load of it
/// produces identical bytes.
pub fn write_oracle_v2_bytes(
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
) -> Result<Vec<u8>, SnapshotError> {
    write_oracle_v2_bytes_with(oracle, meta, false)
}

/// [`write_oracle_v2_bytes`] with an explicit adjacency encoding choice.
///
/// With `compress = false` the output is byte-identical to
/// [`write_oracle_v2_bytes`]. With `compress = true` the base graph's
/// sorted adjacency (targets + slot edge ids) is stored as one
/// varint delta-gap stream plus per-vertex byte offsets
/// ([`SEC_GRAPH_COMP_OFFSETS`]/[`SEC_GRAPH_COMP_DATA`]) instead of the
/// plain [`SEC_GRAPH_TARGETS`]/[`SEC_GRAPH_EIDS`] slabs. Both encodings
/// load to oracles with byte-identical answers; band weight slabs and
/// edge records are unaffected (bands share the base adjacency
/// structure either way).
pub fn write_oracle_v2_bytes_with(
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
    compress: bool,
) -> Result<Vec<u8>, SnapshotError> {
    let parts = oracle.mode_parts();
    if let ModeParts::Weighted { bands, .. } = &parts {
        if bands.len() > MAX_BANDS {
            return Err(corrupt(
                "band count",
                format_args!("{} bands exceed the format limit {MAX_BANDS}", bands.len()),
            ));
        }
    }
    let g = oracle.graph();
    let (n, edges) = (g.n(), g.edges());
    let csr = encode_csr_slabs(n, edges);

    let mut w = SectionWriter::new(KIND_ORACLE);
    w.section(SEC_META, write_meta(oracle, meta, &parts));
    w.section(SEC_GRAPH_OFFSETS, csr.offsets);
    if compress {
        let (byte_offsets, data) = delta_compress_edges(n, edges);
        w.section(SEC_GRAPH_COMP_OFFSETS, le_u64s(&byte_offsets));
        w.section(SEC_GRAPH_COMP_DATA, data);
    } else {
        w.section(SEC_GRAPH_TARGETS, csr.targets);
    }
    w.section(SEC_GRAPH_WEIGHTS, csr.weights);
    if !compress {
        w.section(SEC_GRAPH_EIDS, csr.slot_eids);
    }
    w.section(SEC_GRAPH_EDGES, csr.edges);
    match &parts {
        ModeParts::Unweighted { hopset, .. } => {
            hopset_sections(
                &mut w,
                n,
                hopset,
                [
                    SEC_HOPSET_EDGES,
                    SEC_EXTRA_OFFSETS,
                    SEC_EXTRA_TARGETS,
                    SEC_EXTRA_WEIGHTS,
                ],
            );
        }
        ModeParts::Weighted { bands, .. } => {
            let mut records = vec![0u8; bands.len() * BAND_RECORD_BYTES];
            for (i, band) in bands.iter().enumerate() {
                let at = i * BAND_RECORD_BYTES;
                let mut put = |off: usize, v: u64| {
                    records[at + off..at + off + 8].copy_from_slice(&v.to_le_bytes())
                };
                put(0, band.d);
                put(8, band.what.to_bits());
                put(16, band.h as u64);
                put(24, band.hopset.star_count as u64);
                put(32, band.hopset.clique_count as u64);
                put(40, band.hopset.levels as u64);
                put(48, band.hopset.edges.len() as u64);
            }
            w.section(SEC_BANDS, records);
            for (i, band) in bands.iter().enumerate() {
                debug_assert_eq!(band.band_edges.len(), edges.len());
                // the rounded graph shares offsets/targets/eids with the
                // base graph, so each band only stores its slot weights
                // and edge records
                let band_csr = encode_csr_slabs(n, band.band_edges);
                w.section(band_tag(i, BAND_SUB_SLOT_WEIGHTS), band_csr.weights);
                w.section(band_tag(i, BAND_SUB_EDGES), band_csr.edges);
                hopset_sections(
                    &mut w,
                    n,
                    &band.hopset,
                    [
                        band_tag(i, BAND_SUB_HOPSET_EDGES),
                        band_tag(i, BAND_SUB_EXTRA_OFFSETS),
                        band_tag(i, BAND_SUB_EXTRA_TARGETS),
                        band_tag(i, BAND_SUB_EXTRA_WEIGHTS),
                    ],
                );
            }
        }
    }
    Ok(w.finish())
}

/// Save an oracle as a v2 snapshot at `path` (atomic temp-and-rename,
/// same crash-safety contract as [`crate::snapshot::save_oracle`]).
pub fn save_oracle_v2(
    path: impl AsRef<Path>,
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
) -> Result<(), SnapshotError> {
    save_oracle_v2_with(path, oracle, meta, false)
}

/// [`save_oracle_v2`] with an explicit adjacency encoding choice (see
/// [`write_oracle_v2_bytes_with`]).
pub fn save_oracle_v2_with(
    path: impl AsRef<Path>,
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
    compress: bool,
) -> Result<(), SnapshotError> {
    let bytes = write_oracle_v2_bytes_with(oracle, meta, compress)?;
    static SAVE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = SAVE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{serial}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Slice and cast one band's or the unweighted mode's hopset slabs, then
/// assemble the validated mapped hopset.
fn load_hopset(
    src: &Arc<SnapshotSource>,
    table: &SectionTable,
    n: usize,
    counts: [usize; 4], // [star, clique, levels, edge_count]
    tags: [u32; 4],     // [edges, extra offsets, extra targets, extra weights]
    verify: Verify,
) -> Result<MappedHopset, SnapshotError> {
    let bytes = src.bytes();
    let edges = cast_edges(
        table.require(bytes, tags[0], "hopset edges")?,
        "hopset edges",
    )?;
    if edges.len() != counts[3] {
        return Err(corrupt(
            "hopset edges",
            format_args!("{} stored, meta claims {}", edges.len(), counts[3]),
        ));
    }
    if verify == Verify::Deep {
        // queries never index through the shortcut list itself (they
        // traverse the adjacency slabs), so its content rules are an
        // identity concern, not a safety one
        validate_edges_any_order(n, edges)?;
    }
    let offsets = cast_u32s(
        table.require(bytes, tags[1], "hopset adjacency offsets")?,
        "hopset adjacency offsets",
    )?;
    let targets = cast_u32s(
        table.require(bytes, tags[2], "hopset adjacency targets")?,
        "hopset adjacency targets",
    )?;
    let weights = cast_u64s(
        table.require(bytes, tags[3], "hopset adjacency weights")?,
        "hopset adjacency weights",
    )?;
    let extra =
        ExtraSlabsView::from_parts(Arc::clone(src), offsets, targets, weights, n, edges, verify)?;
    Ok(MappedHopset {
        star_count: counts[0],
        clique_count: counts[1],
        levels: counts[2],
        edges: MappedEdges::of(edges),
        extra,
    })
}

/// The two on-disk encodings of the base graph's adjacency structure.
/// Exactly one is present in a well-formed file; bands reuse whichever
/// one the base graph carries.
#[derive(Clone, Copy)]
enum GraphSlabs<'a> {
    Plain {
        targets: &'a [u32],
        slot_eids: &'a [u32],
    },
    Compressed {
        byte_offsets: &'a [u64],
        data: &'a [u8],
    },
}

/// Parse and validate a v2 oracle snapshot held in `src` at the given
/// [`Verify`] level, returning an oracle that serves straight off the
/// region.
///
/// After `Ok`, no query can panic or read out of bounds, and on any
/// file this crate wrote the oracle's answers (and their [`Cost`]s) are
/// byte-identical to the v1 decode of the same artifact under every
/// execution policy. At [`Verify::Deep`] that identity is *checked*
/// rather than assumed — any derived slab deviating from what a v1
/// load recomputes is a load-time [`SnapshotError`] (see the module
/// docs' trust model).
pub fn read_oracle_v2(
    src: Arc<SnapshotSource>,
    verify: Verify,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let bytes = src.bytes();
    let table = SectionTable::parse(bytes)?;
    if table.kind() != KIND_ORACLE {
        return Err(SnapshotError::WrongArtifact {
            found: table.kind(),
            expected: KIND_ORACLE,
        });
    }
    let meta = parse_meta(table.require(bytes, SEC_META, "oracle meta")?)?;
    let (n, m) = (meta.n, meta.m);

    let offsets = cast_u32s(
        table.require(bytes, SEC_GRAPH_OFFSETS, "graph offsets")?,
        "graph offsets",
    )?;
    let weights = cast_u64s(
        table.require(bytes, SEC_GRAPH_WEIGHTS, "graph weights")?,
        "graph weights",
    )?;
    let edges = cast_edges(
        table.require(bytes, SEC_GRAPH_EDGES, "graph edges")?,
        "graph edges",
    )?;
    if offsets.len() != n + 1 || edges.len() != m {
        return Err(corrupt(
            "graph shape",
            format_args!(
                "meta claims n = {n}, m = {m}; slabs hold {} offsets and {} edges",
                offsets.len(),
                edges.len()
            ),
        ));
    }
    // The adjacency is stored either as plain targets + slot edge id
    // slabs, or as one varint delta-gap stream with per-vertex byte
    // offsets. A file carrying both (or neither) is malformed — the
    // two encodings could disagree, and queries must have exactly one
    // source of truth.
    let has_plain = table.find(SEC_GRAPH_TARGETS).is_some();
    let has_comp = table.find(SEC_GRAPH_COMP_DATA).is_some();
    let slabs = match (has_plain, has_comp) {
        (true, true) => {
            return Err(corrupt(
                "graph adjacency",
                "file carries both plain and compressed adjacency sections",
            ));
        }
        (false, false) => {
            return Err(corrupt(
                "graph adjacency",
                "file carries neither plain nor compressed adjacency sections",
            ));
        }
        (true, false) => GraphSlabs::Plain {
            targets: cast_u32s(
                table.require(bytes, SEC_GRAPH_TARGETS, "graph targets")?,
                "graph targets",
            )?,
            slot_eids: cast_u32s(
                table.require(bytes, SEC_GRAPH_EIDS, "graph edge ids")?,
                "graph edge ids",
            )?,
        },
        (false, true) => GraphSlabs::Compressed {
            byte_offsets: cast_u64s(
                table.require(bytes, SEC_GRAPH_COMP_OFFSETS, "compressed byte offsets")?,
                "compressed byte offsets",
            )?,
            data: table.require(bytes, SEC_GRAPH_COMP_DATA, "compressed adjacency")?,
        },
    };
    let graph = match slabs {
        GraphSlabs::Plain { targets, slot_eids } => MappedGraph::Plain(MmapView::from_parts(
            Arc::clone(&src),
            offsets,
            targets,
            weights,
            slot_eids,
            edges,
            verify,
        )?),
        GraphSlabs::Compressed { byte_offsets, data } => {
            MappedGraph::Compressed(CompressedMmapView::from_parts(
                Arc::clone(&src),
                offsets,
                byte_offsets,
                data,
                weights,
                edges,
                verify,
            )?)
        }
    };

    let mode = match meta.mode {
        0 => {
            let h_max = meta.tail[0] as usize;
            if h_max == 0 {
                // same guard as the v1 reader: a zero budget would
                // silently answer ∞ for every s ≠ t
                return Err(corrupt(
                    "hop budget",
                    "hop budget of 0 cannot answer queries",
                ));
            }
            let hopset = load_hopset(
                &src,
                &table,
                n,
                [
                    meta.tail[1] as usize,
                    meta.tail[2] as usize,
                    meta.tail[3] as usize,
                    meta.tail[4] as usize,
                ],
                [
                    SEC_HOPSET_EDGES,
                    SEC_EXTRA_OFFSETS,
                    SEC_EXTRA_TARGETS,
                    SEC_EXTRA_WEIGHTS,
                ],
                verify,
            )?;
            MappedMode::Unweighted { hopset, h_max }
        }
        1 => {
            let eta = f64::from_bits(meta.tail[0]);
            if !(eta > 0.0 && eta < 1.0) {
                return Err(corrupt("eta", format_args!("must be in (0,1), got {eta}")));
            }
            let epsilon = f64::from_bits(meta.tail[1]);
            let band_count = meta.tail[2] as usize;
            if band_count == 0 && n > 0 {
                return Err(corrupt(
                    "band count",
                    format_args!("0 bands cannot serve a {n}-vertex graph"),
                ));
            }
            if band_count > MAX_BANDS {
                return Err(corrupt(
                    "band count",
                    format_args!("{band_count} bands exceed the format limit {MAX_BANDS}"),
                ));
            }
            let records = table.require(bytes, SEC_BANDS, "band records")?;
            if records.len() != band_count * BAND_RECORD_BYTES {
                return Err(corrupt(
                    "band records",
                    format_args!(
                        "{} bytes for {band_count} bands of {BAND_RECORD_BYTES}",
                        records.len()
                    ),
                ));
            }
            let mut bands = Vec::with_capacity(band_count);
            let mut prev_d = 0u64;
            for i in 0..band_count {
                let rec = &records[i * BAND_RECORD_BYTES..(i + 1) * BAND_RECORD_BYTES];
                let d = meta_u64(rec, 0);
                if d <= prev_d {
                    return Err(corrupt(
                        "band distance",
                        format_args!("band {i} at d = {d} does not exceed the previous band"),
                    ));
                }
                prev_d = d;
                let what = f64::from_bits(meta_u64(rec, 8));
                if !(what.is_finite() && what >= 1.0) {
                    return Err(corrupt(
                        "band grid",
                        format_args!("grid ŵ must be finite and ≥ 1, got {what}"),
                    ));
                }
                let h = meta_u64(rec, 16) as usize;
                if h == 0 {
                    return Err(corrupt(
                        "band hop budget",
                        format_args!("band {i} has a hop budget of 0"),
                    ));
                }
                let rounding = Rounding { what };
                let band_weights = cast_u64s(
                    table.require(bytes, band_tag(i, BAND_SUB_SLOT_WEIGHTS), "band weights")?,
                    "band weights",
                )?;
                let band_edges = cast_edges(
                    table.require(bytes, band_tag(i, BAND_SUB_EDGES), "band edges")?,
                    "band edges",
                )?;
                if band_edges.len() != m {
                    return Err(corrupt(
                        "band edges",
                        format_args!("band {i} stores {} edges, graph has {m}", band_edges.len()),
                    ));
                }
                let band_graph = match verify {
                    // the band shares the base graph's adjacency
                    // structure (plain or compressed) — reuse its
                    // validated slabs instead of re-scanning them once
                    // per band
                    Verify::Bounds => match &graph {
                        MappedGraph::Plain(g) => {
                            MappedGraph::Plain(g.reweighted(band_weights, band_edges)?)
                        }
                        MappedGraph::Compressed(g) => {
                            MappedGraph::Compressed(g.reweighted(band_weights, band_edges)?)
                        }
                    },
                    Verify::Deep => {
                        // the stored rounded weights must be exactly what
                        // a v1 load recomputes from the base graph — that
                        // equality is what makes the two load paths
                        // answer-identical
                        for (j, (be, ge)) in band_edges.iter().zip(edges).enumerate() {
                            if be.w != rounding.round_weight(ge.w) {
                                return Err(corrupt(
                                    "band weight",
                                    format_args!(
                                        "band {i} edge {j} stores weight {}, rounding ⌈{}/ŵ⌉ gives {}",
                                        be.w,
                                        ge.w,
                                        rounding.round_weight(ge.w)
                                    ),
                                ));
                            }
                        }
                        // the fill-sweep replay inside from_parts also
                        // pins the band edges to the base (u, v) pairs in
                        // order
                        match slabs {
                            GraphSlabs::Plain { targets, slot_eids } => {
                                MappedGraph::Plain(MmapView::from_parts(
                                    Arc::clone(&src),
                                    offsets,
                                    targets,
                                    band_weights,
                                    slot_eids,
                                    band_edges,
                                    Verify::Deep,
                                )?)
                            }
                            GraphSlabs::Compressed { byte_offsets, data } => {
                                MappedGraph::Compressed(CompressedMmapView::from_parts(
                                    Arc::clone(&src),
                                    offsets,
                                    byte_offsets,
                                    data,
                                    band_weights,
                                    band_edges,
                                    Verify::Deep,
                                )?)
                            }
                        }
                    }
                };
                let hopset = load_hopset(
                    &src,
                    &table,
                    n,
                    [
                        meta_u64(rec, 24) as usize,
                        meta_u64(rec, 32) as usize,
                        meta_u64(rec, 40) as usize,
                        meta_u64(rec, 48) as usize,
                    ],
                    [
                        band_tag(i, BAND_SUB_HOPSET_EDGES),
                        band_tag(i, BAND_SUB_EXTRA_OFFSETS),
                        band_tag(i, BAND_SUB_EXTRA_TARGETS),
                        band_tag(i, BAND_SUB_EXTRA_WEIGHTS),
                    ],
                    verify,
                )?;
                bands.push(MappedBand {
                    d,
                    rounding,
                    h,
                    graph: band_graph,
                    hopset,
                });
            }
            MappedMode::Weighted {
                eta,
                epsilon,
                bands,
            }
        }
        _ => unreachable!("parse_meta rejects other modes"),
    };

    Ok((
        ApproxShortestPaths {
            repr: Repr::Mapped(MappedOracle { graph, mode }),
        },
        OracleMeta {
            params: meta.params,
            seed: meta.seed,
            build_cost: meta.build_cost,
        },
    ))
}

/// Open a v2 oracle snapshot at `path` for serving (the
/// [`Verify::Bounds`] fast path).
///
/// `mode` picks the source strategy: [`LoadMode::Mmap`] maps the file
/// (zero-copy; linux), [`LoadMode::Read`] bulk-reads it into one aligned
/// buffer (portable fallback). Both produce the same oracle.
pub fn load_oracle_v2(
    path: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let src = SnapshotSource::open(path.as_ref(), mode)?;
    read_oracle_v2(Arc::new(src), Verify::Bounds)
}

/// Open a v2 oracle snapshot at `path` with the full [`Verify::Deep`]
/// content validation — every derived slab is checked against what a v1
/// load would recompute, so a tampered file that would serve wrong
/// answers under the fast path is a typed error here. `psh-snap
/// inspect` and the corruption suites use this.
pub fn verify_oracle_v2(
    path: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let src = SnapshotSource::open(path.as_ref(), mode)?;
    read_oracle_v2(Arc::new(src), Verify::Deep)
}

// ---------------------------------------------------------------------------
// Version sniffing, auto-loading, migration
// ---------------------------------------------------------------------------

/// Read the snapshot version stamped in a file's 8-byte header prefix
/// (shared by every version), without loading the body.
pub fn snapshot_version(path: impl AsRef<Path>) -> Result<u16, SnapshotError> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path.as_ref())?;
    file.read_exact(&mut head).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated {
                what: "snapshot header",
            }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    if head[0..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic {
            found: [head[0], head[1], head[2], head[3]],
        });
    }
    Ok(u16::from_le_bytes([head[4], head[5]]))
}

/// Load an oracle snapshot of either version: v1 files stream-decode,
/// v2 files open through a [`SnapshotSource`] with the requested `mode`
/// (ignored for v1). The serving layers use this so operators can point
/// them at any snapshot on disk.
pub fn load_oracle_auto(
    path: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let path = path.as_ref();
    match snapshot_version(path)? {
        1 => load_oracle(path),
        2 => load_oracle_v2(path, mode),
        found => Err(SnapshotError::UnsupportedVersion {
            found,
            supported: psh_graph::source::SNAPSHOT_VERSION_V2,
        }),
    }
}

/// Upgrade (or re-encode) the oracle snapshot at `src` into a v2
/// snapshot at `dst`. Returns the source file's version and the oracle's
/// provenance. The logical content is preserved exactly: re-saving the
/// migrated file as v1 reproduces the original v1 bytes. A v2 source is
/// deep-validated before re-encoding (migration must never launder a
/// tampered file into a fresh-looking one).
pub fn migrate_oracle_file(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
) -> Result<(u16, OracleMeta), SnapshotError> {
    migrate_oracle_file_with(src, dst, false)
}

/// [`migrate_oracle_file`] with an explicit adjacency encoding choice
/// for the output file (see [`write_oracle_v2_bytes_with`]). Migrating
/// with `compress = true` and back re-produces the plain bytes exactly;
/// both encodings serve byte-identical answers.
pub fn migrate_oracle_file_with(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    compress: bool,
) -> Result<(u16, OracleMeta), SnapshotError> {
    let src = src.as_ref();
    let from = snapshot_version(src)?;
    let (oracle, meta) = match from {
        2 => verify_oracle_v2(src, LoadMode::Read)?,
        _ => load_oracle_auto(src, LoadMode::Read)?,
    };
    save_oracle_v2_with(dst, &oracle, &meta, compress)?;
    Ok((from, meta))
}

// ---------------------------------------------------------------------------
// Inspection (psh-snap)
// ---------------------------------------------------------------------------

/// A human-oriented summary of a v2 oracle snapshot: header scalars plus
/// the full section directory. Produced by [`inspect_v2`] without
/// running the (slower) slab validation.
#[derive(Clone, Debug)]
pub struct OracleSections {
    /// Artifact kind tag (always [`KIND_ORACLE`] for oracle files).
    pub kind: u16,
    /// Vertex count.
    pub n: u64,
    /// Edge count.
    pub m: u64,
    /// 0 = unweighted, 1 = weighted.
    pub mode: u64,
    /// Estimate bands (weighted mode; 0 otherwise).
    pub bands: u64,
    /// `(tag, name, offset, len)` per section, in file order.
    pub sections: Vec<(u32, String, u64, u64)>,
}

/// Name a section tag for display.
pub fn section_name(tag: u32) -> String {
    match tag {
        SEC_META => "meta".into(),
        SEC_GRAPH_OFFSETS => "graph.offsets".into(),
        SEC_GRAPH_TARGETS => "graph.targets".into(),
        SEC_GRAPH_WEIGHTS => "graph.weights".into(),
        SEC_GRAPH_EIDS => "graph.eids".into(),
        SEC_GRAPH_EDGES => "graph.edges".into(),
        SEC_GRAPH_COMP_OFFSETS => "graph.comp_offsets".into(),
        SEC_GRAPH_COMP_DATA => "graph.comp_data".into(),
        SEC_HOPSET_EDGES => "hopset.edges".into(),
        SEC_EXTRA_OFFSETS => "hopset.extra.offsets".into(),
        SEC_EXTRA_TARGETS => "hopset.extra.targets".into(),
        SEC_EXTRA_WEIGHTS => "hopset.extra.weights".into(),
        SEC_BANDS => "bands".into(),
        t if t >= SEC_BAND_BASE => {
            let band = (t - SEC_BAND_BASE) / 16;
            let sub = match (t - SEC_BAND_BASE) % 16 {
                BAND_SUB_SLOT_WEIGHTS => "slot_weights",
                BAND_SUB_EDGES => "edges",
                BAND_SUB_HOPSET_EDGES => "hopset.edges",
                BAND_SUB_EXTRA_OFFSETS => "hopset.extra.offsets",
                BAND_SUB_EXTRA_TARGETS => "hopset.extra.targets",
                BAND_SUB_EXTRA_WEIGHTS => "hopset.extra.weights",
                _ => "unknown",
            };
            format!("band[{band}].{sub}")
        }
        t => format!("unknown[{t:#x}]"),
    }
}

/// Parse a v2 snapshot's header, directory, and meta scalars for
/// inspection. Structural directory errors are reported; slabs are not
/// validated (use [`verify_oracle_v2`] for a full check).
pub fn inspect_v2(bytes: &[u8]) -> Result<OracleSections, SnapshotError> {
    let table = SectionTable::parse(bytes)?;
    let meta = parse_meta(table.require(bytes, SEC_META, "oracle meta")?)?;
    Ok(OracleSections {
        kind: table.kind(),
        n: meta.n as u64,
        m: meta.m as u64,
        mode: meta.mode,
        bands: if meta.mode == 1 { meta.tail[2] } else { 0 },
        sections: table
            .entries()
            .iter()
            .map(|e| (e.tag, section_name(e.tag), e.offset as u64, e.len as u64))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, OracleMode};
    use crate::snapshot::write_oracle;
    use proptest::prelude::*;
    use psh_exec::ExecutionPolicy;
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn oracle_pair(weighted: bool) -> (ApproxShortestPaths, OracleMeta) {
        let base = generators::grid(9, 9);
        let (g, mode) = if weighted {
            let mut rng = StdRng::seed_from_u64(11);
            (
                generators::with_uniform_weights(&base, 1, 30, &mut rng),
                OracleMode::Weighted,
            )
        } else {
            (base, OracleMode::Unweighted)
        };
        let run = OracleBuilder::new()
            .params(test_params())
            .mode(mode)
            .seed(Seed(21))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, test_params());
        (run.artifact, meta)
    }

    /// Load through the serving fast path ([`Verify::Bounds`]) — the
    /// byte-identity assertions below are about what production serves.
    fn mapped(bytes: &[u8]) -> (ApproxShortestPaths, OracleMeta) {
        read_oracle_v2(Arc::new(SnapshotSource::from_bytes(bytes)), Verify::Bounds).unwrap()
    }

    #[test]
    fn v2_round_trips_with_byte_identical_answers_and_costs() {
        for weighted in [false, true] {
            let (fresh, meta) = oracle_pair(weighted);
            let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
            let (served, meta2) = mapped(&bytes);
            assert!(served.is_mapped());
            assert_eq!(meta, meta2, "weighted={weighted}");
            assert_eq!(served.hopset_size(), fresh.hopset_size());
            assert_eq!(served.hop_budget(), fresh.hop_budget());
            assert_eq!(served.graph().n(), fresh.graph().n());
            assert_eq!(served.graph().m(), fresh.graph().m());
            for (s, t) in [(0u32, 80u32), (3, 77), (40, 41), (7, 7)] {
                assert_eq!(
                    served.query(s, t),
                    fresh.query(s, t),
                    "weighted={weighted} pair ({s},{t}) answers+costs must match"
                );
            }
            // batch answers under every policy, against the owned oracle
            let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, 80 - i)).collect();
            for policy in [
                ExecutionPolicy::Sequential,
                ExecutionPolicy::Parallel { threads: 4 },
            ] {
                assert_eq!(
                    served.query_batch(&pairs, policy),
                    fresh.query_batch(&pairs, policy),
                    "weighted={weighted} {policy}"
                );
            }
            // re-encoding the mapped oracle reproduces identical bytes
            let bytes2 = write_oracle_v2_bytes(&served, &meta2).unwrap();
            assert_eq!(bytes, bytes2);
        }
    }

    #[test]
    fn v1_to_v2_migration_round_trips_byte_identically() {
        for weighted in [false, true] {
            let (fresh, meta) = oracle_pair(weighted);
            let mut v1 = Vec::new();
            write_oracle(&mut v1, &fresh, &meta).unwrap();

            // v1 → decode → v2 encode → mapped load → v1 re-save
            let (decoded, meta1) = crate::snapshot::read_oracle(v1.as_slice()).unwrap();
            let v2 = write_oracle_v2_bytes(&decoded, &meta1).unwrap();
            let (served, meta2) = mapped(&v2);
            let mut v1_again = Vec::new();
            write_oracle(&mut v1_again, &served, &meta2).unwrap();
            assert_eq!(v1, v1_again, "weighted={weighted}");

            // and the v2 encode is stable across the loop too
            let v2_again = write_oracle_v2_bytes(&served, &meta2).unwrap();
            assert_eq!(v2, v2_again, "weighted={weighted}");
        }
    }

    #[test]
    fn migrate_oracle_file_upgrades_v1_on_disk() {
        let (fresh, meta) = oracle_pair(true);
        let dir = std::env::temp_dir();
        let v1_path = dir.join("psh_v2_unit_migrate.v1.snap");
        let v2_path = dir.join("psh_v2_unit_migrate.v2.snap");
        crate::snapshot::save_oracle(&v1_path, &fresh, &meta).unwrap();
        assert_eq!(snapshot_version(&v1_path).unwrap(), 1);

        let (from, meta2) = migrate_oracle_file(&v1_path, &v2_path).unwrap();
        assert_eq!(from, 1);
        assert_eq!(meta, meta2);
        assert_eq!(snapshot_version(&v2_path).unwrap(), 2);

        for mode in [LoadMode::Mmap, LoadMode::Read] {
            let (served, meta3) = load_oracle_v2(&v2_path, mode).unwrap();
            assert_eq!(meta, meta3);
            assert_eq!(served.query(0, 80), fresh.query(0, 80));
        }
        // auto-loading resolves both versions
        let (via_auto, _) = load_oracle_auto(&v1_path, LoadMode::Mmap).unwrap();
        assert!(!via_auto.is_mapped());
        let (via_auto, _) = load_oracle_auto(&v2_path, LoadMode::Mmap).unwrap();
        assert!(via_auto.is_mapped());

        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn inspect_reports_the_section_directory() {
        let (fresh, meta) = oracle_pair(true);
        let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
        let info = inspect_v2(&bytes).unwrap();
        assert_eq!(info.kind, KIND_ORACLE);
        assert_eq!(info.n, fresh.graph().n() as u64);
        assert_eq!(info.m, fresh.graph().m() as u64);
        assert_eq!(info.mode, 1);
        assert!(info.bands >= 1);
        let names: Vec<&str> = info
            .sections
            .iter()
            .map(|(_, n, _, _)| n.as_str())
            .collect();
        assert!(names.contains(&"meta"));
        assert!(names.contains(&"graph.offsets"));
        assert!(names.contains(&"bands"));
        assert!(names.contains(&"band[0].slot_weights"));
        // every section is 64-byte aligned
        for (_, name, offset, _) in &info.sections {
            assert_eq!(offset % 64, 0, "{name} at {offset}");
        }
    }

    #[test]
    fn corrupt_scalars_are_typed_errors() {
        let (fresh, meta) = oracle_pair(false);
        let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
        let info = inspect_v2(&bytes).unwrap();
        let meta_off = info.sections.iter().find(|s| s.1 == "meta").unwrap().2 as usize;

        // ε := 7 → invalid params
        let mut bad = bytes.clone();
        bad[meta_off..meta_off + 8].copy_from_slice(&7.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).unwrap_err(),
            SnapshotError::Corrupt {
                what: "hopset parameters",
                ..
            }
        ));

        // h_max := 0
        let mut bad = bytes.clone();
        bad[meta_off + 88..meta_off + 96].fill(0);
        assert!(matches!(
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).unwrap_err(),
            SnapshotError::Corrupt {
                what: "hop budget",
                ..
            }
        ));

        // mode := 9
        let mut bad = bytes.clone();
        bad[meta_off + 64] = 9;
        assert!(matches!(
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).unwrap_err(),
            SnapshotError::Corrupt {
                what: "mode tag",
                ..
            }
        ));

        // n := n + 1 → slab shape mismatch
        let mut bad = bytes.clone();
        let n = fresh.graph().n() as u64 + 1;
        bad[meta_off + 72..meta_off + 80].copy_from_slice(&n.to_le_bytes());
        assert!(
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).is_err()
        );

        // a wrong artifact kind is refused up front
        let mut bad = bytes.clone();
        bad[6..8].copy_from_slice(&psh_graph::io::KIND_SPANNER.to_le_bytes());
        assert!(matches!(
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).unwrap_err(),
            SnapshotError::WrongArtifact { .. }
        ));
    }

    #[test]
    fn tampered_band_weights_fail_the_derivation_check() {
        let (fresh, meta) = oracle_pair(true);
        let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
        let info = inspect_v2(&bytes).unwrap();
        // bump one stored band edge weight (bytes 8..16 of the first
        // record) so it no longer equals ⌈w/ŵ⌉ — both the edge slab and
        // the slot-weight slab are cross-checked against the base graph
        let edges_off = info
            .sections
            .iter()
            .find(|s| s.1 == "band[0].edges")
            .unwrap()
            .2 as usize;
        let mut bad = bytes.clone();
        let w = u64::from_le_bytes(bad[edges_off + 8..edges_off + 16].try_into().unwrap());
        bad[edges_off + 8..edges_off + 16].copy_from_slice(&(w + 1).to_le_bytes());
        let err =
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Deep).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Corrupt {
                    what: "band weight" | "csr adjacency" | "csr edges",
                    ..
                }
            ),
            "got {err}"
        );
        // the fast path serves the tamper (in bounds, content unchecked)
        // — safely: the slot-weight slab queries read is untouched here
        let (served, _) =
            read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), Verify::Bounds).unwrap();
        assert_eq!(served.query(0, 80), fresh.query(0, 80));
    }

    #[test]
    fn truncations_and_byte_flips_never_panic() {
        let (fresh, meta) = oracle_pair(true);
        let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
        for cut in (0..bytes.len().min(8192))
            .step_by(97)
            .chain([bytes.len() - 1, bytes.len() / 2])
        {
            for verify in [Verify::Bounds, Verify::Deep] {
                assert!(
                    read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bytes[..cut])), verify)
                        .is_err(),
                    "prefix of {cut} bytes parsed as a full oracle ({verify:?})"
                );
            }
        }
    }

    /// Byte offset of a named section inside an encoded v2 file.
    fn section_range(bytes: &[u8], name: &str) -> (usize, usize) {
        let info = inspect_v2(bytes).unwrap();
        let s = info.sections.iter().find(|s| s.1 == name).unwrap();
        (s.2 as usize, s.3 as usize)
    }

    #[test]
    fn compressed_v2_round_trips_with_byte_identical_answers() {
        for weighted in [false, true] {
            let (fresh, meta) = oracle_pair(weighted);
            let plain = write_oracle_v2_bytes(&fresh, &meta).unwrap();
            let comp = write_oracle_v2_bytes_with(&fresh, &meta, true).unwrap();
            assert!(
                comp.len() < plain.len(),
                "weighted={weighted}: compressed file {} >= plain {}",
                comp.len(),
                plain.len()
            );

            // the directory swaps targets/eids for the gap stream
            let names: Vec<String> = inspect_v2(&comp)
                .unwrap()
                .sections
                .iter()
                .map(|(_, n, _, _)| n.clone())
                .collect();
            assert!(names.iter().any(|n| n == "graph.comp_offsets"));
            assert!(names.iter().any(|n| n == "graph.comp_data"));
            assert!(!names.iter().any(|n| n == "graph.targets"));
            assert!(!names.iter().any(|n| n == "graph.eids"));

            for verify in [Verify::Bounds, Verify::Deep] {
                let (served, meta2) =
                    read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&comp)), verify).unwrap();
                assert!(served.is_mapped());
                assert_eq!(meta, meta2);
                for (s, t) in [(0u32, 80u32), (3, 77), (40, 41), (7, 7)] {
                    assert_eq!(
                        served.query(s, t),
                        fresh.query(s, t),
                        "weighted={weighted} {verify:?} pair ({s},{t})"
                    );
                }
                let pairs: Vec<(u32, u32)> = (0..40u32).map(|i| (i, 80 - i)).collect();
                for policy in [
                    ExecutionPolicy::Sequential,
                    ExecutionPolicy::Parallel { threads: 4 },
                ] {
                    assert_eq!(
                        served.query_batch(&pairs, policy),
                        fresh.query_batch(&pairs, policy),
                        "weighted={weighted} {verify:?} {policy}"
                    );
                }
                // a compressed load re-encodes to identical bytes in
                // either direction — compression is lossless and stable
                assert_eq!(
                    write_oracle_v2_bytes_with(&served, &meta2, true).unwrap(),
                    comp
                );
                assert_eq!(write_oracle_v2_bytes(&served, &meta2).unwrap(), plain);
            }
        }
    }

    #[test]
    fn compressed_corruption_is_a_typed_error_never_a_panic() {
        let (fresh, meta) = oracle_pair(true);
        let comp = write_oracle_v2_bytes_with(&fresh, &meta, true).unwrap();
        let (data_off, data_len) = section_range(&comp, "graph.comp_data");
        let (bo_off, bo_len) = section_range(&comp, "graph.comp_offsets");

        // truncated varint: a continuation bit on the stream's last
        // byte promises more bytes than the slab holds
        let mut bad = comp.clone();
        bad[data_off + data_len - 1] |= 0x80;
        for verify in [Verify::Bounds, Verify::Deep] {
            assert!(matches!(
                read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), verify).unwrap_err(),
                SnapshotError::Corrupt { .. }
            ));
        }

        // a gap that overflows u32: splice a 6-byte varint (≥ 2^35)
        // over the first pair's target
        let mut bad = comp.clone();
        bad[data_off..data_off + 6].copy_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        for verify in [Verify::Bounds, Verify::Deep] {
            assert!(matches!(
                read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), verify).unwrap_err(),
                SnapshotError::Corrupt { .. }
            ));
        }

        // a byte offset pointing past the end of the stream
        let mut bad = comp.clone();
        let last = bo_off + bo_len - 8;
        bad[last..last + 8].copy_from_slice(&(data_len as u64 + 9).to_le_bytes());
        for verify in [Verify::Bounds, Verify::Deep] {
            assert!(matches!(
                read_oracle_v2(Arc::new(SnapshotSource::from_bytes(&bad)), verify).unwrap_err(),
                SnapshotError::Corrupt { .. }
            ));
        }
    }

    #[test]
    fn migrate_with_compress_shrinks_the_file_and_serves_identically() {
        let (fresh, meta) = oracle_pair(true);
        let dir = std::env::temp_dir();
        let v1_path = dir.join("psh_v2_unit_migrate_comp.v1.snap");
        let v2_path = dir.join("psh_v2_unit_migrate_comp.v2.snap");
        let v2c_path = dir.join("psh_v2_unit_migrate_comp.v2c.snap");
        crate::snapshot::save_oracle(&v1_path, &fresh, &meta).unwrap();

        migrate_oracle_file(&v1_path, &v2_path).unwrap();
        let (from, meta2) = migrate_oracle_file_with(&v1_path, &v2c_path, true).unwrap();
        assert_eq!(from, 1);
        assert_eq!(meta, meta2);
        assert_eq!(snapshot_version(&v2c_path).unwrap(), 2);
        let plain_len = std::fs::metadata(&v2_path).unwrap().len();
        let comp_len = std::fs::metadata(&v2c_path).unwrap().len();
        assert!(comp_len < plain_len, "{comp_len} >= {plain_len}");

        for mode in [LoadMode::Mmap, LoadMode::Read] {
            let (served, meta3) = load_oracle_auto(&v2c_path, mode).unwrap();
            assert!(served.is_mapped());
            assert_eq!(meta, meta3);
            assert_eq!(served.query(0, 80), fresh.query(0, 80));
        }
        // deep re-verification of the compressed file passes (migration
        // must never produce a file its own verifier rejects), and a
        // compressed → plain migration reproduces the plain bytes
        verify_oracle_v2(&v2c_path, LoadMode::Read).unwrap();
        let back_path = dir.join("psh_v2_unit_migrate_comp.back.snap");
        migrate_oracle_file(&v2c_path, &back_path).unwrap();
        assert_eq!(
            std::fs::read(&v2_path).unwrap(),
            std::fs::read(&back_path).unwrap()
        );

        for p in [&v1_path, &v2_path, &v2c_path, &back_path] {
            std::fs::remove_file(p).ok();
        }
    }

    proptest! {
        /// Arbitrary single-byte corruption anywhere in a v2 file:
        /// under [`Verify::Deep`] it either fails with a typed error or
        /// is benign (answers cannot change); under [`Verify::Bounds`]
        /// a survivor may answer differently but querying it can never
        /// panic or read out of bounds.
        #[test]
        fn prop_byte_flips_are_contained(at in 0usize..1 << 14, flip in 1u64..256) {
            let (fresh, meta) = oracle_pair(false);
            let mut bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
            let at = at % bytes.len();
            bytes[at] ^= flip as u8;
            let src = Arc::new(SnapshotSource::from_bytes(&bytes));
            if let Ok((served, _)) = read_oracle_v2(Arc::clone(&src), Verify::Deep) {
                // corruption that survives the full content replay must
                // be benign (e.g. a padding byte): answers cannot change
                for (s, t) in [(0u32, 80u32), (13, 66)] {
                    prop_assert_eq!(served.query(s, t), fresh.query(s, t));
                }
            }
            if let Ok((served, _)) = read_oracle_v2(src, Verify::Bounds) {
                // the fast path guarantees safety, not identity: the
                // queries must complete (no panic, no OOB) and stay
                // well-formed
                for (s, t) in [(0u32, 80u32), (13, 66)] {
                    let (r, _) = served.query(s, t);
                    prop_assert!(r.distance >= 0.0);
                }
            }
        }

        /// Arbitrary truncation points never panic at either level.
        #[test]
        fn prop_truncations_are_contained(ppm in 0u64..1_000_000) {
            let (fresh, meta) = oracle_pair(false);
            let bytes = write_oracle_v2_bytes(&fresh, &meta).unwrap();
            let cut = (bytes.len() as u64 * ppm / 1_000_000) as usize;
            let src = Arc::new(SnapshotSource::from_bytes(&bytes[..cut]));
            prop_assert!(read_oracle_v2(Arc::clone(&src), Verify::Bounds).is_err());
            prop_assert!(read_oracle_v2(src, Verify::Deep).is_err());
        }

        /// The byte-flip containment property holds for compressed
        /// files too: the varint decode sweep at load time means a
        /// surviving file can always be traversed without panics.
        #[test]
        fn prop_compressed_byte_flips_are_contained(at in 0usize..1 << 14, flip in 1u64..256) {
            let (fresh, meta) = oracle_pair(false);
            let mut bytes = write_oracle_v2_bytes_with(&fresh, &meta, true).unwrap();
            let at = at % bytes.len();
            bytes[at] ^= flip as u8;
            let src = Arc::new(SnapshotSource::from_bytes(&bytes));
            if let Ok((served, _)) = read_oracle_v2(Arc::clone(&src), Verify::Deep) {
                for (s, t) in [(0u32, 80u32), (13, 66)] {
                    prop_assert_eq!(served.query(s, t), fresh.query(s, t));
                }
            }
            if let Ok((served, _)) = read_oracle_v2(src, Verify::Bounds) {
                for (s, t) in [(0u32, 80u32), (13, 66)] {
                    let (r, _) = served.query(s, t);
                    prop_assert!(r.distance >= 0.0);
                }
            }
        }
    }
}
