//! Versioned artifact snapshots: save a preprocessed hopset, spanner, or
//! full oracle once, serve it from any later process.
//!
//! Built on the binary framework of [`psh_graph::io`] (magic + version +
//! kind header, little-endian integers, `f64` as exact bit patterns —
//! see that module for the header layout and versioning policy). This
//! module defines the three core-artifact bodies:
//!
//! **Hopset** (`KIND_HOPSET`): `n`, `star_count`, `clique_count`,
//! `levels` (u64 each), then the shortcut edge list in construction
//! order (duplicates between star and clique sets are preserved, so the
//! reload is byte-identical to the build).
//!
//! **Spanner** (`KIND_SPANNER`): `n`, then the canonical sorted edge
//! list.
//!
//! **Oracle** (`KIND_ORACLE`) — the serving snapshot, everything a
//! process needs to answer queries without rebuilding:
//!
//! ```text
//! params   5 × f64   (ε, δ, γ₁, γ₂, k_conf — the build parameters)
//! seed     u64       (the Seed the oracle was built with)
//! cost     2 × u64   (preprocessing work, depth)
//! graph    graph body (n + canonical sorted edges)
//! mode     u8        (0 = unweighted, 1 = weighted)
//! mode 0:  h_max u64, hopset body
//! mode 1:  η f64, ε f64, band count u64,
//!          per band: d u64, grid ŵ f64, h u64, hopset body
//! ```
//!
//! Derived state is *recomputed*, not stored: each band's rounded graph
//! comes back from `Rounding { ŵ }.round_graph(graph)` and every hopset's
//! query adjacency from [`Hopset::to_extra_edges`] — both deterministic
//! functions of the stored data, so a reloaded oracle's `query` /
//! `query_batch` answers **and costs** are byte-identical to the fresh
//! build's (enforced by the `serving` integration tests and the
//! `query_throughput` binary).
//!
//! Malformed input — truncation, wrong version or artifact kind,
//! out-of-range vertex ids, self-loops, duplicate edges, invalid
//! parameters — is reported as a descriptive
//! [`SnapshotError`], never a panic.
//!
//! ```
//! use psh_core::api::{OracleBuilder, Seed};
//! use psh_core::snapshot::{read_oracle, write_oracle, OracleMeta};
//! use psh_graph::generators;
//!
//! let g = generators::grid(8, 8);
//! let run = OracleBuilder::new().seed(Seed(7)).build(&g).unwrap();
//! let meta = OracleMeta::of_run(&run, Default::default());
//!
//! let mut buf = Vec::new();
//! write_oracle(&mut buf, &run.artifact, &meta).unwrap();
//! let (served, meta2) = read_oracle(buf.as_slice()).unwrap();
//! assert_eq!(meta2.seed, Seed(7));
//! assert_eq!(served.query(0, 63), run.artifact.query(0, 63));
//! ```

use crate::api::Run;
use crate::hopset::rounding::Rounding;
use crate::hopset::weighted::{EstimateBand, WeightedHopsets};
use crate::hopset::{Hopset, HopsetParams};
use crate::oracle::{
    owned_hopset_parts, ApproxShortestPaths, HopsetParts, Mode, ModeParts, OracleGraph, Repr,
};
use crate::Seed;
use psh_graph::io::{
    EdgeRules, SnapshotReader, SnapshotWriter, KIND_HOPSET, KIND_ORACLE, KIND_SPANNER,
};
use psh_pram::Cost;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

pub mod journal;
pub mod manifest;
pub mod v2;

pub use journal::{
    append_journal, apply_deltas, compact_oracle, journal_path, load_journal, owned_base_graph,
    read_journal, rebuild_oracle, CompactReport, JournalReloader, ReloadReport, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
pub use manifest::{
    compact_sharded, inspect_sharded, is_sharded_manifest, load_sharded, save_sharded,
    ShardCompact, ShardInspectRow, ShardedCompactReport, ShardedInspect, MANIFEST_MAGIC,
    MANIFEST_VERSION,
};
pub use psh_graph::io::SnapshotError;
pub use psh_graph::Verify;
pub use v2::{
    inspect_v2, load_oracle_auto, load_oracle_v2, migrate_oracle_file, migrate_oracle_file_with,
    read_oracle_v2, save_oracle_v2, save_oracle_v2_with, section_name, snapshot_version,
    verify_oracle_v2, write_oracle_v2_bytes, write_oracle_v2_bytes_with, OracleSections,
};

/// Provenance stored alongside an oracle: the parameters and seed that
/// built it (enough to rebuild it from scratch and get the identical
/// artifact) and the preprocessing cost in the paper's currency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OracleMeta {
    /// The hopset parameters the oracle was built with.
    pub params: HopsetParams,
    /// The seed that produced it.
    pub seed: Seed,
    /// Work/depth spent preprocessing.
    pub build_cost: Cost,
}

impl OracleMeta {
    /// Meta for a completed [`Run`], with the parameters supplied by the
    /// caller (the oracle itself does not retain them).
    pub fn of_run(run: &Run<ApproxShortestPaths>, params: HopsetParams) -> OracleMeta {
        OracleMeta {
            params,
            seed: run.seed,
            build_cost: run.cost,
        }
    }
}

pub(crate) fn corrupt(what: &'static str, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        what,
        detail: detail.into(),
    }
}

fn read_count(
    r: &mut SnapshotReader<impl Read>,
    what: &'static str,
) -> Result<usize, SnapshotError> {
    let v = r.u64(what)?;
    usize::try_from(v).map_err(|_| corrupt(what, format!("{v} does not fit in usize")))
}

/// A vertex count must also fit the `u32` id space.
fn read_vertex_count(
    r: &mut SnapshotReader<impl Read>,
    what: &'static str,
) -> Result<usize, SnapshotError> {
    let n = read_count(r, what)?;
    if n as u64 > u32::MAX as u64 + 1 {
        return Err(corrupt(
            what,
            format!("{n} exceeds the u32 vertex-id space"),
        ));
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Hopset
// ---------------------------------------------------------------------------

fn write_hopset_parts<W: Write>(
    w: &mut SnapshotWriter<W>,
    h: &HopsetParts<'_>,
) -> Result<(), SnapshotError> {
    w.u64(h.n as u64)?;
    w.u64(h.star_count as u64)?;
    w.u64(h.clique_count as u64)?;
    w.u64(h.levels as u64)?;
    w.edges(h.edges)
}

fn write_hopset_body<W: Write>(w: &mut SnapshotWriter<W>, h: &Hopset) -> Result<(), SnapshotError> {
    write_hopset_parts(w, &owned_hopset_parts(h))
}

fn read_hopset_body<R: Read>(r: &mut SnapshotReader<R>) -> Result<Hopset, SnapshotError> {
    let n = read_vertex_count(r, "hopset vertex count")?;
    let star_count = read_count(r, "hopset star count")?;
    let clique_count = read_count(r, "hopset clique count")?;
    let levels = read_count(r, "hopset level count")?;
    let edges = r.edges(n, EdgeRules::CanonicalAnyOrder)?;
    Ok(Hopset {
        n,
        edges,
        star_count,
        clique_count,
        levels,
    })
}

/// Snapshot a hopset (kind `KIND_HOPSET`).
pub fn write_hopset<W: Write>(out: W, h: &Hopset) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, KIND_HOPSET)?;
    write_hopset_body(&mut w, h)?;
    w.finish()?;
    Ok(())
}

/// Load a hopset snapshot, validating every shortcut edge.
pub fn read_hopset<R: Read>(inp: R) -> Result<Hopset, SnapshotError> {
    let mut r = SnapshotReader::new(inp, KIND_HOPSET)?;
    let h = read_hopset_body(&mut r)?;
    r.expect_eof()?;
    Ok(h)
}

// ---------------------------------------------------------------------------
// Spanner
// ---------------------------------------------------------------------------

/// Snapshot a spanner (kind `KIND_SPANNER`).
pub fn write_spanner<W: Write>(out: W, s: &crate::Spanner) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, KIND_SPANNER)?;
    w.u64(s.n as u64)?;
    w.edges(&s.edges)?;
    w.finish()?;
    Ok(())
}

/// Load a spanner snapshot (edges must be canonical and sorted, as the
/// writer emits them).
pub fn read_spanner<R: Read>(inp: R) -> Result<crate::Spanner, SnapshotError> {
    let mut r = SnapshotReader::new(inp, KIND_SPANNER)?;
    let n = read_vertex_count(&mut r, "spanner vertex count")?;
    let edges = r.edges(n, EdgeRules::CanonicalSorted)?;
    r.expect_eof()?;
    Ok(crate::Spanner { n, edges })
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Snapshot a preprocessed oracle with its provenance (kind
/// `KIND_ORACLE`). See the module docs for the body layout.
pub fn write_oracle<W: Write>(
    out: W,
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, KIND_ORACLE)?;
    w.f64(meta.params.epsilon)?;
    w.f64(meta.params.delta)?;
    w.f64(meta.params.gamma1)?;
    w.f64(meta.params.gamma2)?;
    w.f64(meta.params.k_conf)?;
    w.u64(meta.seed.0)?;
    w.u64(meta.build_cost.work)?;
    w.u64(meta.build_cost.depth)?;
    // parts access makes this writer representation-independent: an
    // oracle serving off a mapped v2 region re-saves as v1 byte-for-byte
    // the same way an owned one does (the migration round-trip test
    // pins this down)
    match oracle.graph() {
        OracleGraph::Owned(g) => w.graph(g)?,
        OracleGraph::Mapped(g) => w.graph(g)?,
        OracleGraph::MappedCompressed(g) => w.graph(g)?,
    }
    match oracle.mode_parts() {
        ModeParts::Unweighted { h_max, hopset } => {
            w.u8(0)?;
            w.u64(h_max as u64)?;
            write_hopset_parts(&mut w, &hopset)?;
        }
        ModeParts::Weighted {
            eta,
            epsilon,
            bands,
        } => {
            w.u8(1)?;
            w.f64(eta)?;
            w.f64(epsilon)?;
            w.u64(bands.len() as u64)?;
            for band in &bands {
                w.u64(band.d)?;
                w.f64(band.what)?;
                w.u64(band.h as u64)?;
                write_hopset_parts(&mut w, &band.hopset)?;
            }
        }
    }
    w.finish()?;
    Ok(())
}

/// Load an oracle snapshot. Derived state (per-band rounded graphs, the
/// hopsets' query adjacency) is recomputed deterministically, so the
/// result answers queries byte-identically to the oracle that was saved.
pub fn read_oracle<R: Read>(inp: R) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let mut r = SnapshotReader::new(inp, KIND_ORACLE)?;
    let params = HopsetParams {
        epsilon: r.f64("params.epsilon")?,
        delta: r.f64("params.delta")?,
        gamma1: r.f64("params.gamma1")?,
        gamma2: r.f64("params.gamma2")?,
        k_conf: r.f64("params.k_conf")?,
    };
    params
        .validate()
        .map_err(|reason| corrupt("hopset parameters", reason))?;
    let seed = Seed(r.u64("seed")?);
    let build_cost = Cost::new(r.u64("cost.work")?, r.u64("cost.depth")?);
    let graph = r.graph()?;
    let n = graph.n();

    let check_hopset_n = |h: &Hopset| -> Result<(), SnapshotError> {
        if h.n != n {
            return Err(corrupt(
                "hopset vertex count",
                format!("hopset covers {} vertices, graph has {n}", h.n),
            ));
        }
        Ok(())
    };

    let mode = match r.u8("mode tag")? {
        0 => {
            let h_max = read_count(&mut r, "hop budget")?;
            if h_max == 0 {
                // the builder clamps h_max to ≥ 4; a zero budget would
                // silently answer ∞ for every s ≠ t
                return Err(corrupt(
                    "hop budget",
                    "hop budget of 0 cannot answer queries",
                ));
            }
            let hopset = read_hopset_body(&mut r)?;
            check_hopset_n(&hopset)?;
            let extra = hopset.to_extra_edges();
            Mode::Unweighted {
                hopset,
                extra,
                h_max,
            }
        }
        1 => {
            let eta = r.f64("eta")?;
            if !(eta > 0.0 && eta < 1.0) {
                return Err(corrupt("eta", format!("must be in (0,1), got {eta}")));
            }
            let epsilon = r.f64("band epsilon")?;
            let band_count = read_count(&mut r, "band count")?;
            if band_count == 0 && n > 0 {
                // §5 always emits at least the d = 1 band on a non-empty
                // vertex set; zero bands would silently answer ∞ everywhere
                return Err(corrupt(
                    "band count",
                    format!("0 bands cannot serve a {n}-vertex graph"),
                ));
            }
            let mut bands = Vec::with_capacity(band_count.min(1 << 16));
            let mut prev_d = 0u64;
            for i in 0..band_count {
                let d = r.u64("band distance")?;
                if d <= prev_d {
                    return Err(corrupt(
                        "band distance",
                        format!("band {i} at d = {d} does not exceed the previous band"),
                    ));
                }
                prev_d = d;
                let what = r.f64("band grid")?;
                if !(what.is_finite() && what >= 1.0) {
                    return Err(corrupt(
                        "band grid",
                        format!("grid ŵ must be finite and ≥ 1, got {what}"),
                    ));
                }
                let h = read_count(&mut r, "band hop budget")?;
                if h == 0 {
                    // same guard as the unweighted h_max: a zero budget
                    // would make this band silently answer ∞
                    return Err(corrupt(
                        "band hop budget",
                        format!("band {i} has a hop budget of 0"),
                    ));
                }
                let hopset = read_hopset_body(&mut r)?;
                check_hopset_n(&hopset)?;
                let rounding = Rounding { what };
                let band_graph = rounding.round_graph(&graph);
                let extra = hopset.to_extra_edges();
                bands.push(EstimateBand {
                    d,
                    rounding,
                    graph: band_graph,
                    hopset,
                    extra,
                    h,
                });
            }
            Mode::Weighted {
                hopsets: WeightedHopsets::from_parts(bands, eta, epsilon, n),
            }
        }
        other => {
            return Err(corrupt(
                "mode tag",
                format!("expected 0 (unweighted) or 1 (weighted), got {other}"),
            ))
        }
    };
    r.expect_eof()?;
    Ok((
        ApproxShortestPaths {
            repr: Repr::Owned { graph, mode },
        },
        OracleMeta {
            params,
            seed,
            build_cost,
        },
    ))
}

/// Save an oracle snapshot to `path` (buffered, overwrite-safe).
///
/// The bytes are written to a `.tmp` sibling in the same directory and
/// atomically renamed over `path`, so a concurrent or crashed save can
/// never leave a truncated snapshot behind: readers see either the old
/// complete file or the new complete file. Overwriting an existing
/// snapshot needs no prior `rm`.
pub fn save_oracle(
    path: impl AsRef<Path>,
    oracle: &ApproxShortestPaths,
    meta: &OracleMeta,
) -> Result<(), SnapshotError> {
    // The temp sibling's name is unique per process and per call, so
    // concurrent saves to the same path cannot interleave writes into
    // one temp file — each writes its own and the last rename wins with
    // a complete snapshot either way.
    static SAVE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = SAVE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{serial}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        write_oracle(&mut writer, oracle, meta)?;
        writer.flush()?;
        // Force the bytes to disk before the rename: some filesystems
        // journal the rename ahead of the data, and a power loss in that
        // window would otherwise install an empty/truncated snapshot.
        writer.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load an oracle snapshot from `path` (buffered).
pub fn load_oracle(
    path: impl AsRef<Path>,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let file = std::fs::File::open(path)?;
    read_oracle(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{HopsetBuilder, OracleBuilder, OracleMode, SpannerBuilder};
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    #[test]
    fn hopset_round_trips_byte_identically() {
        let g = generators::grid(10, 10);
        let h = HopsetBuilder::unweighted()
            .params(test_params())
            .seed(Seed(3))
            .build(&g)
            .unwrap()
            .artifact
            .into_single();
        let mut buf = Vec::new();
        write_hopset(&mut buf, &h).unwrap();
        let back = read_hopset(buf.as_slice()).unwrap();
        assert_eq!(h, back);
        let mut buf2 = Vec::new();
        write_hopset(&mut buf2, &back).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn spanner_round_trips_byte_identically() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::connected_random(60, 160, &mut rng);
        let s = SpannerBuilder::unweighted(3.0)
            .seed(Seed(5))
            .build(&g)
            .unwrap()
            .artifact;
        let mut buf = Vec::new();
        write_spanner(&mut buf, &s).unwrap();
        let back = read_spanner(buf.as_slice()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn artifact_kinds_do_not_cross_load() {
        let g = generators::path(6);
        let s = SpannerBuilder::unweighted(2.0)
            .seed(Seed(1))
            .build(&g)
            .unwrap()
            .artifact;
        let mut buf = Vec::new();
        write_spanner(&mut buf, &s).unwrap();
        assert!(matches!(
            read_hopset(buf.as_slice()).unwrap_err(),
            SnapshotError::WrongArtifact { .. }
        ));
        assert!(matches!(
            read_oracle(buf.as_slice()).unwrap_err(),
            SnapshotError::WrongArtifact { .. }
        ));
    }

    fn oracle_bytes(weighted: bool) -> (Vec<u8>, ApproxShortestPaths, OracleMeta) {
        let base = generators::grid(9, 9);
        let (g, mode) = if weighted {
            let mut rng = StdRng::seed_from_u64(11);
            (
                generators::with_uniform_weights(&base, 1, 30, &mut rng),
                OracleMode::Weighted,
            )
        } else {
            (base, OracleMode::Unweighted)
        };
        let run = OracleBuilder::new()
            .params(test_params())
            .mode(mode)
            .seed(Seed(21))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, test_params());
        let mut buf = Vec::new();
        write_oracle(&mut buf, &run.artifact, &meta).unwrap();
        (buf, run.artifact, meta)
    }

    #[test]
    fn oracle_round_trips_with_identical_answers_and_meta() {
        for weighted in [false, true] {
            let (buf, fresh, meta) = oracle_bytes(weighted);
            let (served, meta2) = read_oracle(buf.as_slice()).unwrap();
            assert_eq!(meta, meta2);
            assert_eq!(served.hopset_size(), fresh.hopset_size());
            assert_eq!(served.hop_budget(), fresh.hop_budget());
            for (s, t) in [(0u32, 80u32), (3, 77), (40, 41), (7, 7)] {
                assert_eq!(served.query(s, t), fresh.query(s, t), "weighted={weighted}");
            }
            // re-saving the served oracle reproduces the identical bytes
            let mut buf2 = Vec::new();
            write_oracle(&mut buf2, &served, &meta2).unwrap();
            assert_eq!(buf, buf2);
        }
    }

    #[test]
    fn oracle_truncations_never_panic() {
        let (buf, _, _) = oracle_bytes(true);
        // probe a spread of prefixes (every byte would be slow on a large
        // snapshot; step keeps it thorough but quick)
        for cut in (0..buf.len()).step_by(7) {
            match read_oracle(&buf[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes parsed as a full oracle"),
            }
        }
    }

    #[test]
    fn corrupt_oracle_fields_are_descriptive_errors() {
        let (buf, _, _) = oracle_bytes(false);
        // mode byte lives right after params+seed+cost+graph; flipping the
        // last byte of the body (an edge weight byte) corrupts *something*
        // but must never panic. Target the mode tag precisely instead:
        // params(40) + seed(8) + cost(16) after the 8-byte header, then
        // the graph body — easier to corrupt the tail:
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let _ = read_oracle(bad.as_slice()); // any Err is fine; no panic
                                             // invalid params are rejected up front
        let mut bad_params = buf.clone();
        bad_params[8..16].copy_from_slice(&f64::to_bits(7.0).to_le_bytes()); // ε = 7
        assert!(matches!(
            read_oracle(bad_params.as_slice()).unwrap_err(),
            SnapshotError::Corrupt {
                what: "hopset parameters",
                ..
            }
        ));
        // trailing garbage is rejected
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(matches!(
            read_oracle(trailing.as_slice()).unwrap_err(),
            SnapshotError::Corrupt {
                what: "trailer",
                ..
            }
        ));
    }

    #[test]
    fn zeroed_hop_budget_and_band_count_are_rejected() {
        // body offset of the mode byte: header(8) + params(40) + seed(8)
        // + cost(16) + graph body (n u64 + m u64 + 16 bytes per edge)
        let mode_at = |m: usize| 72 + 16 + 16 * m;

        let (buf, fresh, _) = oracle_bytes(false);
        let at = mode_at(fresh.graph().m());
        assert_eq!(buf[at], 0, "mode byte should be unweighted");
        let mut bad = buf.clone();
        bad[at + 1..at + 9].fill(0); // h_max := 0
        assert!(matches!(
            read_oracle(bad.as_slice()).unwrap_err(),
            SnapshotError::Corrupt {
                what: "hop budget",
                ..
            }
        ));

        let (buf, fresh, _) = oracle_bytes(true);
        let at = mode_at(fresh.graph().m());
        assert_eq!(buf[at], 1, "mode byte should be weighted");
        let mut bad = buf[..at + 1 + 16 + 8].to_vec(); // keep eta + epsilon
        bad[at + 17..at + 25].fill(0); // band count := 0, body ends there
        assert!(matches!(
            read_oracle(bad.as_slice()).unwrap_err(),
            SnapshotError::Corrupt {
                what: "band count",
                ..
            }
        ));
    }

    #[test]
    fn save_and_load_via_files() {
        let (_, fresh, meta) = oracle_bytes(false);
        let path = std::env::temp_dir().join("psh_snapshot_unit_test.snap");
        save_oracle(&path, &fresh, &meta).unwrap();
        // overwrite-safe: saving over an existing snapshot needs no rm,
        // and the unique temp siblings used for the atomic rename are gone
        save_oracle(&path, &fresh, &meta).unwrap();
        let leftovers = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("psh_snapshot_unit_test.snap.")
            })
            .count();
        assert_eq!(leftovers, 0, "temp siblings must be renamed away");
        let (served, meta2) = load_oracle(&path).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(served.query(0, 80), fresh.query(0, 80));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_oracle(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }
}
