//! Delta journals: append-only edge-mutation logs layered on oracle
//! snapshots, and `compact` to fold a journal back into its base.
//!
//! A snapshot is immutable once renamed into place — that is what makes
//! the mmap path and the atomic-overwrite story sound. Mutating the
//! served graph therefore never edits the base file; mutations accumulate
//! in a **sidecar journal** (`<base>.journal`) of validated
//! [`GraphDelta`] batches, and the serving tier folds base + journal into
//! a fresh oracle at reload time. `compact` makes the fold durable: it
//! rebuilds the oracle for the mutated graph, installs it over the base
//! via the same unique-temp + fsync + atomic-rename path every save uses,
//! and removes the journal.
//!
//! ## On-disk layout
//!
//! Little-endian throughout, one more magic in the family (`b"PSHS"`
//! snapshots, `b"PSHN"` wire frames):
//!
//! ```text
//!  0        4        6        8                16
//!  ┌────────┬────────┬────────┬────────────────┐
//!  │ "PSHJ" │ ver=1  │ rsvd=0 │    n (u64)     │   file header
//!  └────────┴────────┴────────┴────────────────┘
//!  followed by zero or more records, one per appended delta:
//!  ┌───────────────┬──────────────────────────────┬──────────────┐
//!  │ op count u64  │ ops: tag u8, u u32, v u32    │ fnv1a64 u64  │
//!  │               │   tag 1 = insert (+ w u64)   │ over count   │
//!  │               │   tag 2 = delete             │ and op bytes │
//!  └───────────────┴──────────────────────────────┴──────────────┘
//! ```
//!
//! The per-record checksum exists because journals are *appended to*, not
//! atomically replaced: a crash mid-append leaves a torn tail, and the
//! checksum turns that tail into a typed [`SnapshotError`] instead of a
//! silently-shorter delta. Decoding re-runs the full [`GraphDelta`]
//! structural validation, so a journal in hand is as trustworthy as a
//! freshly built delta. Appends assume a single writer (the process that
//! owns the snapshot); readers tolerate concurrent appends because they
//! stop at the last complete record boundary they can prove.
//!
//! Malformed input — truncation, bad magic, checksum mismatch, invalid
//! ops — is always a typed [`SnapshotError`], never a panic (proptest
//! campaigns below).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use psh_graph::{CsrGraph, DeltaOp, GraphDelta, LoadMode};

use super::{
    corrupt, load_oracle, load_oracle_auto, save_oracle, save_oracle_v2, snapshot_version,
    OracleMeta, SnapshotError,
};
use crate::api::OracleBuilder;
use crate::oracle::{ApproxShortestPaths, OracleGraph};

/// Journal file magic.
pub const JOURNAL_MAGIC: [u8; 4] = *b"PSHJ";
/// Journal format version.
pub const JOURNAL_VERSION: u16 = 1;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// The journal sidecar path for a base snapshot: `<base>.journal`.
pub fn journal_path(base: impl AsRef<Path>) -> PathBuf {
    let mut p = base.as_ref().as_os_str().to_owned();
    p.push(".journal");
    PathBuf::from(p)
}

/// FNV-1a 64 — the record checksum. Not cryptographic; it only needs to
/// catch torn appends and bit rot, and it keeps the journal dependency-free.
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn encode_record(delta: &GraphDelta) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + delta.len() * 17);
    body.extend_from_slice(&(delta.len() as u64).to_le_bytes());
    for op in delta.ops() {
        match *op {
            DeltaOp::Insert { u, v, w } => {
                body.push(TAG_INSERT);
                body.extend_from_slice(&u.to_le_bytes());
                body.extend_from_slice(&v.to_le_bytes());
                body.extend_from_slice(&w.to_le_bytes());
            }
            DeltaOp::Delete { u, v } => {
                body.push(TAG_DELETE);
                body.extend_from_slice(&u.to_le_bytes());
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let mut fnv = Fnv::new();
    fnv.update(&body);
    body.extend_from_slice(&fnv.0.to_le_bytes());
    body
}

/// Append one delta as a new journal record, creating the journal (with
/// its header) on first use. The file is fsynced before returning, so an
/// acknowledged append survives a crash. Errors if an existing journal
/// targets a different vertex count than `delta`.
pub fn append_journal(path: impl AsRef<Path>, delta: &GraphDelta) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let existing_n = match load_journal(path) {
        Ok((n, _)) => Some(n),
        Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    if let Some(n) = existing_n {
        if n != delta.n() {
            return Err(corrupt(
                "journal vertex count",
                format!("journal targets n = {n}, delta targets n = {}", delta.n()),
            ));
        }
    }
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut w = BufWriter::new(file);
    if existing_n.is_none() {
        w.write_all(&JOURNAL_MAGIC)?;
        w.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        w.write_all(&(delta.n() as u64).to_le_bytes())?;
    }
    w.write_all(&encode_record(delta))?;
    w.flush()?;
    w.get_ref().sync_all()?;
    Ok(())
}

fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), SnapshotError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { what }
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// Decode a journal stream: the target vertex count plus the recorded
/// deltas in append order (they must be applied sequentially — a later
/// delta may touch a pair an earlier one created).
pub fn read_journal(mut inp: impl Read) -> Result<(usize, Vec<GraphDelta>), SnapshotError> {
    let mut head = [0u8; 16];
    read_exact_or(&mut inp, &mut head, "journal header")?;
    if head[0..4] != JOURNAL_MAGIC {
        return Err(SnapshotError::BadMagic {
            found: head[0..4].try_into().unwrap(),
        });
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != JOURNAL_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: JOURNAL_VERSION,
        });
    }
    if head[6..8] != [0, 0] {
        return Err(corrupt(
            "journal header",
            "reserved bytes must be zero".to_string(),
        ));
    }
    let n = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let n = usize::try_from(n)
        .ok()
        .filter(|&n| n as u64 <= u32::MAX as u64 + 1)
        .ok_or_else(|| {
            corrupt(
                "journal vertex count",
                format!("{n} exceeds the u32 vertex-id space"),
            )
        })?;

    let mut deltas = Vec::new();
    loop {
        // Record boundary: clean EOF here means the journal ends.
        let mut count_bytes = [0u8; 8];
        match inp.read(&mut count_bytes)? {
            0 => break,
            got => read_exact_or(&mut inp, &mut count_bytes[got..], "journal record")?,
        }
        let mut fnv = Fnv::new();
        fnv.update(&count_bytes);
        let count = u64::from_le_bytes(count_bytes);
        let mut ops = Vec::new();
        for _ in 0..count {
            let mut tag = [0u8; 1];
            read_exact_or(&mut inp, &mut tag, "journal op")?;
            fnv.update(&tag);
            let mut pair = [0u8; 8];
            read_exact_or(&mut inp, &mut pair, "journal op")?;
            fnv.update(&pair);
            let u = u32::from_le_bytes(pair[0..4].try_into().unwrap());
            let v = u32::from_le_bytes(pair[4..8].try_into().unwrap());
            match tag[0] {
                TAG_INSERT => {
                    let mut wb = [0u8; 8];
                    read_exact_or(&mut inp, &mut wb, "journal op")?;
                    fnv.update(&wb);
                    let w = u64::from_le_bytes(wb);
                    ops.push(DeltaOp::Insert { u, v, w });
                }
                TAG_DELETE => ops.push(DeltaOp::Delete { u, v }),
                other => {
                    return Err(corrupt(
                        "journal op tag",
                        format!("expected 1 (insert) or 2 (delete), got {other}"),
                    ))
                }
            }
        }
        let mut sum = [0u8; 8];
        read_exact_or(&mut inp, &mut sum, "journal checksum")?;
        if u64::from_le_bytes(sum) != fnv.0 {
            return Err(corrupt(
                "journal checksum",
                format!("record {} fails its checksum (torn append?)", deltas.len()),
            ));
        }
        let delta =
            GraphDelta::from_ops(n, ops).map_err(|e| corrupt("journal ops", e.to_string()))?;
        deltas.push(delta);
    }
    Ok((n, deltas))
}

/// [`read_journal`] from a file path (buffered).
pub fn load_journal(path: impl AsRef<Path>) -> Result<(usize, Vec<GraphDelta>), SnapshotError> {
    let file = std::fs::File::open(path)?;
    read_journal(BufReader::new(file))
}

/// Apply journal deltas to a base graph in order, surfacing any
/// base/journal mismatch as a typed error.
pub fn apply_deltas(base: &CsrGraph, deltas: &[GraphDelta]) -> Result<CsrGraph, SnapshotError> {
    let mut g = base.clone();
    for (i, d) in deltas.iter().enumerate() {
        g = g
            .apply_delta(d)
            .map_err(|e| corrupt("journal apply", format!("record {i}: {e}")))?;
    }
    Ok(g)
}

/// An owned copy of the graph an oracle serves — cloned from an owned
/// repr, materialized from a mapped one. This is the base the journal's
/// deltas apply to.
pub fn owned_base_graph(oracle: &ApproxShortestPaths) -> CsrGraph {
    match oracle.graph() {
        OracleGraph::Owned(g) => g.clone(),
        mapped => CsrGraph::from_edges(mapped.n(), mapped.edges().iter().copied()),
    }
}

/// Rebuild an oracle for a (mutated) graph from the provenance of its
/// predecessor: same parameters, same seed, so the result is
/// byte-identical to a fresh `OracleBuilder` run on that graph. The
/// build executes on the psh-exec pool under the ambient policy;
/// artifacts are policy-independent by the workspace determinism
/// contract.
pub fn rebuild_oracle(
    g: &CsrGraph,
    meta: &OracleMeta,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    let run = OracleBuilder::new()
        .params(meta.params)
        .seed(meta.seed)
        .build(g)
        .map_err(|e| corrupt("oracle rebuild", e.to_string()))?;
    let meta = OracleMeta {
        params: meta.params,
        seed: run.seed,
        build_cost: run.cost,
    };
    Ok((run.artifact, meta))
}

/// What [`compact_oracle`] folded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Snapshot format version the new base was written in (same as the
    /// old base).
    pub version: u16,
    /// Journal records folded in.
    pub records: usize,
    /// Total ops across those records.
    pub ops: usize,
    /// Edge count before / after the fold.
    pub m_before: usize,
    /// Edge count after the fold.
    pub m_after: usize,
}

/// Fold `<path>.journal` into the base snapshot at `path`: load the base,
/// apply every journal delta, rebuild the oracle for the mutated graph,
/// save it over the base (same format version, unique-temp + fsync +
/// atomic rename — a crash leaves either the old complete base or the new
/// one, never a torn file), then remove the journal.
///
/// The journal is removed only after the new base is durably installed.
/// A crash between the rename and the removal leaves a stale journal
/// whose deltas no longer match the base; the next apply reports a typed
/// `journal apply` error rather than silently double-applying.
pub fn compact_oracle(path: impl AsRef<Path>) -> Result<CompactReport, SnapshotError> {
    let path = path.as_ref();
    let version = snapshot_version(path)?;
    let (oracle, meta) = match version {
        1 => load_oracle(path)?,
        _ => load_oracle_auto(path, LoadMode::Read)?,
    };
    let base = owned_base_graph(&oracle);
    let jpath = journal_path(path);
    let (jn, deltas) = load_journal(&jpath)?;
    if jn != base.n() {
        return Err(corrupt(
            "journal vertex count",
            format!(
                "journal targets n = {jn}, base snapshot has n = {}",
                base.n()
            ),
        ));
    }
    let m_before = base.m();
    let ops = deltas.iter().map(|d| d.len()).sum();
    let mutated = apply_deltas(&base, &deltas)?;
    let (rebuilt, new_meta) = rebuild_oracle(&mutated, &meta)?;
    match version {
        1 => save_oracle(path, &rebuilt, &new_meta)?,
        _ => save_oracle_v2(path, &rebuilt, &new_meta)?,
    }
    std::fs::remove_file(&jpath)?;
    Ok(CompactReport {
        version,
        records: deltas.len(),
        ops,
        m_before,
        m_after: mutated.m(),
    })
}

/// What one successful reload did (also the body of the wire-level
/// `Reload` reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReloadReport {
    /// The epoch the service entered.
    pub epoch: u64,
    /// Journal records applied by this reload.
    pub records: usize,
    /// Total ops across those records.
    pub ops: usize,
    /// Vertex / edge counts of the graph now served.
    pub n: u64,
    /// Edge count of the graph now served.
    pub m: u64,
}

/// Drives journal-based hot swaps for one
/// [`OracleService`](crate::service::OracleService): tracks the
/// graph the service currently answers for and how much of the journal
/// has been folded in, and on [`poll`](JournalReloader::poll) applies any
/// new records, rebuilds the oracle (on the psh-exec pool, while the old
/// epoch keeps serving — the service lock is never held across the
/// rebuild), and swaps at a batch boundary.
///
/// One reloader per served snapshot; keep it on the thread that watches
/// the journal (`psh-server --watch-journal`) or handles `Reload`
/// requests. If the journal shrinks or disappears, a `compact` folded it
/// into the base — the reloader's graph already equals that fold, so it
/// resets its record cursor and keeps serving without a reload.
pub struct JournalReloader {
    journal: PathBuf,
    graph: CsrGraph,
    meta: OracleMeta,
    consumed: usize,
}

impl JournalReloader {
    /// Track `service`'s snapshot at `base_path` (the journal sidecar is
    /// derived via [`journal_path`]). `graph` and `meta` must describe
    /// the oracle the service currently serves — use
    /// [`owned_base_graph`] on it and the meta its snapshot loaded with.
    pub fn new(base_path: impl AsRef<Path>, graph: CsrGraph, meta: OracleMeta) -> JournalReloader {
        JournalReloader {
            journal: journal_path(base_path),
            graph,
            meta,
            consumed: 0,
        }
    }

    /// The journal file being watched.
    pub fn journal(&self) -> &Path {
        &self.journal
    }

    /// Check the journal for records newer than the last fold; if any
    /// exist, rebuild and hot-swap. Returns `Ok(None)` when there is
    /// nothing new (including a missing journal), `Ok(Some(report))`
    /// after a completed swap. Errors are typed and leave the service
    /// serving its current epoch untouched.
    pub fn poll(
        &mut self,
        service: &crate::service::OracleService,
    ) -> Result<Option<ReloadReport>, SnapshotError> {
        let (jn, deltas) = match load_journal(&self.journal) {
            Ok(j) => j,
            Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // compacted away (or never written): the base now equals
                // our graph, so new journals start from record 0
                self.consumed = 0;
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        if jn != self.graph.n() {
            return Err(corrupt(
                "journal vertex count",
                format!(
                    "journal targets n = {jn}, served graph has n = {}",
                    self.graph.n()
                ),
            ));
        }
        if deltas.len() < self.consumed {
            // compact + fresh appends raced between two polls: the new
            // journal's records target the compacted base, which is the
            // graph we already serve
            self.consumed = 0;
        }
        if deltas.len() == self.consumed {
            return Ok(None);
        }
        let fresh = &deltas[self.consumed..];
        let mutated = apply_deltas(&self.graph, fresh)?;
        // The rebuild runs here — on this thread, fanning out on the
        // psh-exec pool — while the service keeps answering from the old
        // epoch; only the swap itself takes the service lock.
        let (rebuilt, new_meta) = rebuild_oracle(&mutated, &self.meta)?;
        let epoch = service.swap_oracle(std::sync::Arc::new(rebuilt));
        let report = ReloadReport {
            epoch,
            records: fresh.len(),
            ops: fresh.iter().map(|d| d.len()).sum(),
            n: mutated.n() as u64,
            m: mutated.m() as u64,
        };
        self.graph = mutated;
        self.meta = new_meta;
        self.consumed = deltas.len();
        Ok(Some(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, Seed};
    use crate::hopset::HopsetParams;
    use proptest::prelude::*;
    use psh_graph::generators;

    fn params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psh_journal_{name}_{}", std::process::id()))
    }

    fn sample_delta(n: usize) -> GraphDelta {
        let mut d = GraphDelta::new(n);
        d.insert(0, (n - 1) as u32, 5).unwrap();
        d.delete(0, 1).unwrap();
        d
    }

    #[test]
    fn journal_appends_and_reads_back_in_order() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut d1 = GraphDelta::new(16);
        d1.insert(2, 9, 7).unwrap();
        let mut d2 = GraphDelta::new(16);
        d2.delete(2, 9).unwrap();
        d2.insert(3, 4, 1).unwrap();
        append_journal(&path, &d1).unwrap();
        append_journal(&path, &d2).unwrap();
        let (n, deltas) = load_journal(&path).unwrap();
        assert_eq!(n, 16);
        assert_eq!(deltas, vec![d1, d2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_rejects_vertex_count_mismatch_on_append() {
        let path = temp_path("nmismatch");
        std::fs::remove_file(&path).ok();
        append_journal(&path, &sample_delta(8)).unwrap();
        let err = append_journal(&path, &sample_delta(9)).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Corrupt {
                what: "journal vertex count",
                ..
            }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_a_typed_io_error() {
        let err = load_journal(temp_path("never_written")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn torn_tail_and_bit_flips_are_typed_errors() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        append_journal(&path, &sample_delta(8)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // every truncation is Truncated/clean, never a panic
        for cut in 0..bytes.len() {
            if let Ok((_, deltas)) = read_journal(&bytes[..cut]) {
                assert!(deltas.is_empty(), "cut {cut} produced records");
            }
        }
        // flipping any payload byte after the header fails the checksum
        // (or an earlier structural check) — never silently succeeds
        for i in 16..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                read_journal(bad.as_slice()).is_err(),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn apply_deltas_surfaces_mismatches() {
        let g = generators::path(4);
        let mut d = GraphDelta::new(4);
        d.delete(0, 3).unwrap(); // not an edge of the path
        let err = apply_deltas(&g, &[d]).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Corrupt {
                what: "journal apply",
                ..
            }
        ));
    }

    #[test]
    fn compact_folds_journal_into_base_and_matches_fresh_build() {
        for version in [1u16, 2] {
            let g = generators::grid(8, 8);
            let run = OracleBuilder::new()
                .params(params())
                .seed(Seed(21))
                .build(&g)
                .unwrap();
            let meta = OracleMeta::of_run(&run, params());
            let path = temp_path(&format!("compact_v{version}"));
            std::fs::remove_file(&path).ok();
            match version {
                1 => save_oracle(&path, &run.artifact, &meta).unwrap(),
                _ => save_oracle_v2(&path, &run.artifact, &meta).unwrap(),
            }
            let mut d = GraphDelta::new(64);
            d.insert(0, 63, 3).unwrap();
            d.delete(0, 1).unwrap();
            append_journal(journal_path(&path), &d).unwrap();

            let report = compact_oracle(&path).unwrap();
            assert_eq!(report.version, version);
            assert_eq!(report.records, 1);
            assert_eq!(report.ops, 2);
            assert_eq!(report.m_after, report.m_before); // one insert, one delete
            assert!(!journal_path(&path).exists(), "journal must be removed");

            // the compacted base answers byte-identically to a fresh build
            // of the mutated graph
            let mutated = g.apply_delta(&d).unwrap();
            let fresh = OracleBuilder::new()
                .params(params())
                .seed(Seed(21))
                .build(&mutated)
                .unwrap();
            let (served, served_meta) = load_oracle_auto(&path, LoadMode::Read).unwrap();
            assert_eq!(served_meta.seed, Seed(21));
            for (s, t) in [(0u32, 63u32), (0, 1), (5, 58), (7, 7)] {
                assert_eq!(served.query(s, t), fresh.artifact.query(s, t));
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn journal_reloader_swaps_only_on_new_records() {
        use crate::service::{OracleService, ServiceConfig};
        let g = generators::grid(8, 8);
        let run = OracleBuilder::new()
            .params(params())
            .seed(Seed(33))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, params());
        let base = temp_path("reloader_base");
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(journal_path(&base)).ok();
        let service = OracleService::new(run.artifact, ServiceConfig::default());
        let mut reloader = JournalReloader::new(&base, g.clone(), meta);

        // no journal yet: nothing to do
        assert_eq!(reloader.poll(&service).unwrap(), None);
        assert_eq!(service.epoch(), 0);

        // first record → epoch 1
        let mut d = GraphDelta::new(64);
        d.insert(0, 63, 2).unwrap();
        append_journal(journal_path(&base), &d).unwrap();
        let report = reloader.poll(&service).unwrap().unwrap();
        assert_eq!((report.epoch, report.records, report.ops), (1, 1, 1));
        assert_eq!(report.m, g.m() as u64 + 1);
        // idempotent until a new record lands
        assert_eq!(reloader.poll(&service).unwrap(), None);
        assert_eq!(service.epoch(), 1);

        // the swapped-in oracle answers like a fresh build of the
        // mutated graph
        let mutated = g.apply_delta(&d).unwrap();
        let fresh = OracleBuilder::new()
            .params(params())
            .seed(Seed(33))
            .build(&mutated)
            .unwrap();
        for (s, t) in [(0u32, 63u32), (5, 58)] {
            assert_eq!(service.query(s, t), fresh.artifact.query(s, t).0);
        }

        // second record → epoch 2, applied on top of the first
        let mut d2 = GraphDelta::new(64);
        d2.delete(0, 63).unwrap();
        append_journal(journal_path(&base), &d2).unwrap();
        let report = reloader.poll(&service).unwrap().unwrap();
        assert_eq!((report.epoch, report.records), (2, 1));
        assert_eq!(report.m, g.m() as u64);

        // journal removed (compacted): cursor resets, no spurious swap
        std::fs::remove_file(journal_path(&base)).ok();
        assert_eq!(reloader.poll(&service).unwrap(), None);
        assert_eq!(service.epoch(), 2);
        std::fs::remove_file(&base).ok();
    }

    /// The atomic-save contract under failure: when a save (v1 or v2)
    /// or a compact cannot complete, the target's directory must hold no
    /// leaked `.tmp` sibling afterwards, and a failed compact must leave
    /// the base byte-identical to what it was.
    #[test]
    fn failing_saves_leave_no_tmp_siblings() {
        // a dedicated directory so leftover counting is exact
        let dir = std::env::temp_dir().join(format!("psh_tmpaudit_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::grid(4, 4);
        let run = OracleBuilder::new()
            .params(params())
            .seed(Seed(3))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, params());

        // the rename target is a directory, so both save formats fail
        // *after* their temp file exists — cleanup must remove it
        let occupied = dir.join("occupied");
        std::fs::create_dir(&occupied).unwrap();
        assert!(save_oracle(&occupied, &run.artifact, &meta).is_err());
        assert!(save_oracle_v2(&occupied, &run.artifact, &meta).is_err());

        // a compact over a corrupt journal fails before touching the base
        let base = dir.join("base");
        save_oracle_v2(&base, &run.artifact, &meta).unwrap();
        let pristine = std::fs::read(&base).unwrap();
        std::fs::write(journal_path(&base), b"PSHJgarbage").unwrap();
        assert!(compact_oracle(&base).is_err());
        assert_eq!(
            std::fs::read(&base).unwrap(),
            pristine,
            "a failed compact must not touch the base"
        );

        let leaked: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leaked.is_empty(), "leaked temp files: {leaked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_without_journal_is_a_typed_error() {
        let g = generators::grid(4, 4);
        let run = OracleBuilder::new()
            .params(params())
            .seed(Seed(2))
            .build(&g)
            .unwrap();
        let meta = OracleMeta::of_run(&run, params());
        let path = temp_path("compact_nojournal");
        save_oracle_v2(&path, &run.artifact, &meta).unwrap();
        assert!(matches!(
            compact_oracle(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        /// Arbitrary bytes never panic the journal reader.
        #[test]
        fn prop_arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u16..256, 0..200)) {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let _ = read_journal(bytes.as_slice());
        }

        /// Arbitrary corruption of a real journal is a typed error or a
        /// (valid) reinterpretation — never a panic, and never an out-of-
        /// range delta.
        #[test]
        fn prop_corrupted_real_journal_never_panics(
            flips in proptest::collection::vec((0usize..4096, 0u16..256), 1..8),
        ) {
            let path = temp_path("prop_corrupt");
            std::fs::remove_file(&path).ok();
            let mut d = GraphDelta::new(32);
            d.insert(1, 2, 3).unwrap();
            d.delete(4, 5).unwrap();
            append_journal(&path, &d).unwrap();
            append_journal(&path, &sample_delta(32)).unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            for &(at, val) in &flips {
                let idx = at % bytes.len();
                bytes[idx] = val as u8;
            }
            if let Ok((n, deltas)) = read_journal(bytes.as_slice()) {
                // survived the checksum: everything decoded must still be
                // structurally valid
                for delta in &deltas {
                    prop_assert_eq!(delta.n(), n);
                    for op in delta.ops() {
                        let (u, v) = op.pair();
                        prop_assert!(u < v && (v as usize) < n);
                    }
                }
            }
        }
    }
}
