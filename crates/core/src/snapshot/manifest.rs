//! Sharded snapshot manifests: one v2 snapshot per shard + the overlay,
//! stitched together by a small `PSHM` manifest file.
//!
//! Layout on disk for a base path `snap`:
//!
//! ```text
//! snap             PSHM manifest: plan + epochs + cliques + overlay meta
//! snap.shard0      v2 oracle snapshot of shard 0 (carries its OracleMeta)
//! snap.shard1      …
//! snap.overlay     v2 oracle snapshot of the boundary overlay (if any)
//! snap.shard0.journal   per-shard delta journal (shard-local ids)
//! ```
//!
//! The manifest records everything a process needs to reconstruct the
//! [`ShardPlan`] and re-stitch without re-partitioning: the dense shard
//! labeling, the cut edges, per-shard journal epochs, the per-shard
//! boundary cliques (overlay-id space, so the overlay graph can be
//! rebuilt after any single shard changes), the band exponent `η`, and
//! the overlay's build meta. Everything is little-endian with a trailing
//! FNV-1a-64 checksum, written via the same unique-temp + fsync +
//! atomic-rename path every snapshot save uses.
//!
//! [`compact_sharded`] folds per-shard journals shard-by-shard: a shard
//! with no journal is **never rewritten** — only compacted shards, the
//! overlay (whose clique weights depend on them), and the manifest
//! (whose epochs advance) change on disk.

use super::journal::Fnv;
use super::{
    corrupt, journal_path, load_journal, owned_base_graph, save_oracle_v2, OracleMeta,
    SnapshotError,
};
use crate::api::{OracleBuilder, Seed};
use crate::hopset::HopsetParams;
use crate::oracle::ApproxShortestPaths;
use crate::shard::{
    overlay_snapshot_path, shard_snapshot_path, OverlayPart, ShardPlan, ShardedOracle, ShardedParts,
};
use crate::snapshot::apply_deltas;
use crate::snapshot::v2::load_oracle_auto;
use psh_graph::source::LoadMode;
use psh_graph::{CsrGraph, Edge};
use psh_pram::Cost;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic prefix of a sharded manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"PSHM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;

/// Whether the file at `path` is a sharded manifest (`PSHM` magic).
/// Returns `false` for missing files and plain oracle snapshots.
pub fn is_sharded_manifest(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 4];
    match std::fs::File::open(path.as_ref()) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && magic == MANIFEST_MAGIC,
        Err(_) => false,
    }
}

struct ManifestBody {
    n: usize,
    k: usize,
    beta: f64,
    seed: Seed,
    max_candidates: Option<usize>,
    quotient_m: usize,
    eta: f64,
    shard_of: Vec<u32>,
    cut_edges: Vec<Edge>,
    epochs: Vec<u64>,
    shard_nm: Vec<(u64, u64)>,
    cliques: Vec<Vec<Edge>>,
    overlay: Option<(OracleMeta, u64, u64)>,
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_edges(buf: &mut Vec<u8>, edges: &[Edge]) {
    push_u64(buf, edges.len() as u64);
    for e in edges {
        buf.extend_from_slice(&e.u.to_le_bytes());
        buf.extend_from_slice(&e.v.to_le_bytes());
        push_u64(buf, e.w);
    }
}

fn push_meta(buf: &mut Vec<u8>, meta: &OracleMeta) {
    push_f64(buf, meta.params.epsilon);
    push_f64(buf, meta.params.delta);
    push_f64(buf, meta.params.gamma1);
    push_f64(buf, meta.params.gamma2);
    push_f64(buf, meta.params.k_conf);
    push_u64(buf, meta.seed.0);
    push_u64(buf, meta.build_cost.work);
    push_u64(buf, meta.build_cost.depth);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.at..end];
                self.at = end;
                Ok(out)
            }
            None => Err(corrupt(what, "manifest truncated")),
        }
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| corrupt(what, format!("{v} does not fit in usize")))
    }

    fn edges(&mut self, what: &'static str) -> Result<Vec<Edge>, SnapshotError> {
        let count = self.usize(what)?;
        if count.saturating_mul(16) > self.bytes.len() {
            return Err(corrupt(what, format!("implausible edge count {count}")));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let u = self.u32(what)?;
            let v = self.u32(what)?;
            let w = self.u64(what)?;
            out.push(Edge { u, v, w });
        }
        Ok(out)
    }

    fn meta(&mut self, what: &'static str) -> Result<OracleMeta, SnapshotError> {
        let params = HopsetParams {
            epsilon: self.f64(what)?,
            delta: self.f64(what)?,
            gamma1: self.f64(what)?,
            gamma2: self.f64(what)?,
            k_conf: self.f64(what)?,
        };
        let seed = Seed(self.u64(what)?);
        let work = self.u64(what)?;
        let depth = self.u64(what)?;
        Ok(OracleMeta {
            params,
            seed,
            build_cost: Cost::new(work, depth),
        })
    }
}

fn encode_manifest(body: &ManifestBody) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    push_u64(&mut buf, body.n as u64);
    push_u64(&mut buf, body.k as u64);
    push_f64(&mut buf, body.beta);
    push_u64(&mut buf, body.seed.0);
    push_u64(&mut buf, body.max_candidates.map_or(u64::MAX, |c| c as u64));
    push_u64(&mut buf, body.quotient_m as u64);
    push_f64(&mut buf, body.eta);
    for &l in &body.shard_of {
        buf.extend_from_slice(&l.to_le_bytes());
    }
    push_edges(&mut buf, &body.cut_edges);
    for s in 0..body.k {
        push_u64(&mut buf, body.epochs[s]);
        push_u64(&mut buf, body.shard_nm[s].0);
        push_u64(&mut buf, body.shard_nm[s].1);
        push_edges(&mut buf, &body.cliques[s]);
    }
    match &body.overlay {
        Some((meta, n, m)) => {
            push_u64(&mut buf, 1);
            push_u64(&mut buf, *n);
            push_u64(&mut buf, *m);
            push_meta(&mut buf, meta);
        }
        None => push_u64(&mut buf, 0),
    }
    let mut fnv = Fnv::new();
    fnv.update(&buf);
    push_u64(&mut buf, fnv.0);
    buf
}

fn decode_manifest(bytes: &[u8]) -> Result<ManifestBody, SnapshotError> {
    if bytes.len() < 16 {
        return Err(corrupt("manifest header", "file too short"));
    }
    if bytes[..4] != MANIFEST_MAGIC {
        return Err(corrupt("manifest magic", "not a PSHM sharded manifest"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != MANIFEST_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }
    let (payload, sum) = bytes.split_at(bytes.len() - 8);
    let mut fnv = Fnv::new();
    fnv.update(payload);
    if u64::from_le_bytes(sum.try_into().unwrap()) != fnv.0 {
        return Err(corrupt("manifest checksum", "FNV-1a mismatch"));
    }
    let mut r = Reader {
        bytes: payload,
        at: 8,
    };
    let n = r.usize("manifest n")?;
    let k = r.usize("manifest shard count")?;
    if k == 0 {
        return Err(corrupt("manifest shard count", "zero shards"));
    }
    let beta = r.f64("manifest beta")?;
    let seed = Seed(r.u64("manifest seed")?);
    let max_candidates = match r.u64("manifest candidate cap")? {
        u64::MAX => None,
        c => Some(
            usize::try_from(c)
                .map_err(|_| corrupt("manifest candidate cap", "does not fit in usize"))?,
        ),
    };
    let quotient_m = r.usize("manifest quotient size")?;
    let eta = r.f64("manifest eta")?;
    if n.saturating_mul(4) > payload.len() {
        return Err(corrupt("manifest labeling", format!("implausible n {n}")));
    }
    let mut shard_of = Vec::with_capacity(n);
    for _ in 0..n {
        shard_of.push(r.u32("manifest labeling")?);
    }
    let cut_edges = r.edges("manifest cut edges")?;
    let mut epochs = Vec::with_capacity(k);
    let mut shard_nm = Vec::with_capacity(k);
    let mut cliques = Vec::with_capacity(k);
    for _ in 0..k {
        epochs.push(r.u64("manifest shard epoch")?);
        let sn = r.u64("manifest shard n")?;
        let sm = r.u64("manifest shard m")?;
        shard_nm.push((sn, sm));
        cliques.push(r.edges("manifest shard cliques")?);
    }
    let overlay = match r.u64("manifest overlay flag")? {
        0 => None,
        1 => {
            let on = r.u64("manifest overlay n")?;
            let om = r.u64("manifest overlay m")?;
            let meta = r.meta("manifest overlay meta")?;
            Some((meta, on, om))
        }
        other => {
            return Err(corrupt(
                "manifest overlay flag",
                format!("expected 0 or 1, got {other}"),
            ))
        }
    };
    if r.at != payload.len() {
        return Err(corrupt("manifest body", "trailing bytes"));
    }
    Ok(ManifestBody {
        n,
        k,
        beta,
        seed,
        max_candidates,
        quotient_m,
        eta,
        shard_of,
        cut_edges,
        epochs,
        shard_nm,
        cliques,
        overlay,
    })
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    static SAVE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = SAVE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{serial}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn body_of(oracle: &ShardedOracle, parts: &ShardedParts) -> ManifestBody {
    let plan = oracle.plan();
    ManifestBody {
        n: plan.n(),
        k: plan.num_shards(),
        beta: plan.beta(),
        seed: plan.seed(),
        max_candidates: oracle.max_candidates(),
        quotient_m: plan.quotient_edges(),
        eta: parts.eta,
        shard_of: plan.labels().to_vec(),
        cut_edges: plan.cut_edges().to_vec(),
        epochs: oracle.epochs().to_vec(),
        shard_nm: (0..plan.num_shards())
            .map(|s| {
                let g = oracle.shard(s).graph();
                (g.n() as u64, g.m() as u64)
            })
            .collect(),
        cliques: parts.cliques.clone(),
        overlay: oracle.overlay().map(|ov| {
            let meta = parts
                .overlay_meta
                .expect("overlay oracle implies overlay meta");
            let g = ov.oracle.graph();
            (meta, g.n() as u64, g.m() as u64)
        }),
    }
}

/// Save a sharded oracle at `base`: one v2 snapshot per shard
/// (`<base>.shardK`), the overlay snapshot (`<base>.overlay`, when a
/// boundary exists), and the `PSHM` manifest at `base` itself — written
/// last, so a complete manifest always names complete component
/// snapshots.
pub fn save_sharded(
    base: impl AsRef<Path>,
    oracle: &ShardedOracle,
    parts: &ShardedParts,
) -> Result<(), SnapshotError> {
    let base = base.as_ref();
    if parts.shard_metas.len() != oracle.num_shards() || parts.cliques.len() != oracle.num_shards()
    {
        return Err(corrupt(
            "sharded parts",
            "per-shard metas/cliques do not match the shard count",
        ));
    }
    for s in 0..oracle.num_shards() {
        save_oracle_v2(
            shard_snapshot_path(base, s),
            oracle.shard(s),
            &parts.shard_metas[s],
        )?;
    }
    if let Some(ov) = oracle.overlay() {
        let meta = parts
            .overlay_meta
            .as_ref()
            .ok_or_else(|| corrupt("sharded parts", "overlay oracle without overlay meta"))?;
        save_oracle_v2(overlay_snapshot_path(base), &ov.oracle, meta)?;
    }
    write_atomic(base, &encode_manifest(&body_of(oracle, parts)))
}

/// Load a sharded oracle saved by [`save_sharded`]: parse the manifest,
/// load every component snapshot with `mode`, and re-stitch. The
/// assembly re-checks shapes and the epoch vector, so a manifest whose
/// components drifted apart is a typed error, not a wrong answer.
pub fn load_sharded(
    base: impl AsRef<Path>,
    mode: LoadMode,
) -> Result<(ShardedOracle, ShardedParts), SnapshotError> {
    let base = base.as_ref();
    let body = decode_manifest(&std::fs::read(base)?)?;
    let plan = ShardPlan::from_parts(
        body.n,
        body.k,
        body.shard_of,
        body.cut_edges,
        body.quotient_m,
        body.beta,
        body.seed,
    )
    .map_err(|e| corrupt("manifest plan", e.to_string()))?;
    let mut shards = Vec::with_capacity(body.k);
    let mut shard_metas = Vec::with_capacity(body.k);
    for s in 0..body.k {
        let (oracle, meta) = load_oracle_auto(shard_snapshot_path(base, s), mode)?;
        if oracle.graph().n() as u64 != body.shard_nm[s].0 {
            return Err(corrupt(
                "shard snapshot",
                format!(
                    "shard {s} snapshot has n = {}, manifest says {}",
                    oracle.graph().n(),
                    body.shard_nm[s].0
                ),
            ));
        }
        shards.push(Arc::new(oracle));
        shard_metas.push(meta);
    }
    let (overlay, overlay_meta) = match &body.overlay {
        Some((_, on, _)) => {
            let (oracle, meta) = load_oracle_auto(overlay_snapshot_path(base), mode)?;
            if oracle.graph().n() as u64 != *on {
                return Err(corrupt(
                    "overlay snapshot",
                    format!(
                        "overlay snapshot has n = {}, manifest says {on}",
                        oracle.graph().n()
                    ),
                ));
            }
            (
                Some(OverlayPart {
                    oracle: Arc::new(oracle),
                    built_from: body.epochs.clone(),
                }),
                Some(meta),
            )
        }
        None => (None, None),
    };
    let oracle = ShardedOracle::assemble(
        Arc::new(plan),
        shards,
        body.epochs,
        overlay,
        body.max_candidates,
    )
    .map_err(|e| corrupt("sharded assembly", e.to_string()))?;
    let parts = ShardedParts {
        shard_metas,
        overlay_meta,
        eta: body.eta,
        cliques: body.cliques,
    };
    Ok((oracle, parts))
}

/// Per-shard row of [`ShardedInspect`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInspectRow {
    /// Journal epoch of this shard.
    pub epoch: u64,
    /// Vertices in the shard subgraph.
    pub n: u64,
    /// Edges in the shard subgraph.
    pub m: u64,
    /// Boundary clique edges contributed to the overlay.
    pub cliques: u64,
    /// Whether a journal sidecar with pending records exists.
    pub journal_records: u64,
}

/// What `psh-snap inspect` reports for a sharded manifest — parsed from
/// the manifest alone (plus a journal peek), without loading any
/// component snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedInspect {
    /// Vertices in the partitioned graph.
    pub n: u64,
    /// Shard count.
    pub shards: Vec<ShardInspectRow>,
    /// Boundary vertices (overlay graph vertices).
    pub boundary: u64,
    /// Cut edges between shards.
    pub cut_edges: u64,
    /// Edge count of the shard-adjacency quotient graph.
    pub quotient_m: u64,
    /// Overlay graph `(n, m)`, when a boundary exists.
    pub overlay: Option<(u64, u64)>,
    /// Candidate cap, if the oracle was built with one.
    pub max_candidates: Option<usize>,
    /// Band exponent `η` the components were built with.
    pub eta: f64,
    /// Partition granularity `β`.
    pub beta: f64,
    /// Root seed of the sharded build.
    pub seed: u64,
}

/// Summarize a sharded manifest (shard count, per-shard `n`/`m`/epoch,
/// boundary/quotient size, pending journal records) without loading the
/// component snapshots.
pub fn inspect_sharded(base: impl AsRef<Path>) -> Result<ShardedInspect, SnapshotError> {
    let base = base.as_ref();
    let body = decode_manifest(&std::fs::read(base)?)?;
    let mut boundary = vec![false; body.n];
    for e in &body.cut_edges {
        boundary[e.u as usize] = true;
        boundary[e.v as usize] = true;
    }
    let mut shards = Vec::with_capacity(body.k);
    for s in 0..body.k {
        let journal_records = match load_journal(journal_path(shard_snapshot_path(base, s))) {
            Ok((_, deltas)) => deltas.len() as u64,
            Err(_) => 0,
        };
        shards.push(ShardInspectRow {
            epoch: body.epochs[s],
            n: body.shard_nm[s].0,
            m: body.shard_nm[s].1,
            cliques: body.cliques[s].len() as u64,
            journal_records,
        });
    }
    Ok(ShardedInspect {
        n: body.n as u64,
        shards,
        boundary: boundary.iter().filter(|&&b| b).count() as u64,
        cut_edges: body.cut_edges.len() as u64,
        quotient_m: body.quotient_m as u64,
        overlay: body.overlay.as_ref().map(|(_, on, om)| (*on, *om)),
        max_candidates: body.max_candidates,
        eta: body.eta,
        beta: body.beta,
        seed: body.seed.0,
    })
}

/// One shard's fold in a [`ShardedCompactReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCompact {
    /// Which shard was folded.
    pub shard: u32,
    /// Journal records folded into the base.
    pub records: usize,
    /// Total ops across those records.
    pub ops: usize,
    /// Edge count before/after the fold.
    pub m_before: usize,
    /// Edge count after the fold.
    pub m_after: usize,
}

/// What [`compact_sharded`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedCompactReport {
    /// Per-shard folds, ascending by shard; empty when no shard had a
    /// journal.
    pub shards: Vec<ShardCompact>,
    /// Per-shard epochs now recorded in the manifest.
    pub epochs: Vec<u64>,
}

fn rebuild_sharded_component(
    g: &CsrGraph,
    meta: &OracleMeta,
    eta: f64,
) -> Result<(ApproxShortestPaths, OracleMeta), SnapshotError> {
    // Mirrors `ShardedReloader`: sharded components are always built
    // with `allow_large_weights` and an explicit `eta`, so the fold must
    // rebuild the same way to stay byte-identical with a served reload.
    let run = OracleBuilder::new()
        .params(meta.params)
        .eta(eta)
        .seed(meta.seed)
        .allow_large_weights(true)
        .build(g)
        .map_err(|e| corrupt("shard rebuild", e.to_string()))?;
    let new_meta = OracleMeta {
        params: meta.params,
        seed: meta.seed,
        build_cost: run.cost,
    };
    Ok((run.artifact, new_meta))
}

/// Fold per-shard journals into their shard snapshots, shard by shard.
/// Shards without a journal are untouched on disk; for each folded
/// shard the shard snapshot is rewritten, its journal removed, its
/// epoch bumped, its boundary cliques recomputed, and — because clique
/// weights depend on the shard graphs — the overlay snapshot and the
/// manifest are rewritten once at the end. Crash-safe in the same sense
/// as `compact`: every rewrite is atomic, and a stale shard journal
/// left behind replays onto an already-folded base as a no-op reload.
pub fn compact_sharded(base: impl AsRef<Path>) -> Result<ShardedCompactReport, SnapshotError> {
    let base = base.as_ref();
    let mut body = decode_manifest(&std::fs::read(base)?)?;
    let plan = ShardPlan::from_parts(
        body.n,
        body.k,
        body.shard_of.clone(),
        body.cut_edges.clone(),
        body.quotient_m,
        body.beta,
        body.seed,
    )
    .map_err(|e| corrupt("manifest plan", e.to_string()))?;
    let mut folded = Vec::new();
    for s in 0..body.k {
        let spath = shard_snapshot_path(base, s);
        let jpath = journal_path(&spath);
        let (jn, deltas) = match load_journal(&jpath) {
            Ok(j) => j,
            Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let (oracle, meta) = load_oracle_auto(&spath, LoadMode::Read)?;
        let g = owned_base_graph(&oracle);
        if jn != g.n() {
            return Err(corrupt(
                "shard journal vertex count",
                format!(
                    "journal for shard {s} targets n = {jn}, shard has n = {}",
                    g.n()
                ),
            ));
        }
        let mutated = apply_deltas(&g, &deltas)?;
        let (rebuilt, new_meta) = rebuild_sharded_component(&mutated, &meta, body.eta)?;
        save_oracle_v2(&spath, &rebuilt, &new_meta)?;
        std::fs::remove_file(&jpath)?;
        body.epochs[s] += 1;
        body.shard_nm[s] = (mutated.n() as u64, mutated.m() as u64);
        body.cliques[s] = plan.shard_cliques(s, &mutated);
        folded.push(ShardCompact {
            shard: s as u32,
            records: deltas.len(),
            ops: deltas.iter().map(|d| d.len()).sum(),
            m_before: g.m(),
            m_after: mutated.m(),
        });
    }
    if folded.is_empty() {
        return Ok(ShardedCompactReport {
            shards: Vec::new(),
            epochs: body.epochs,
        });
    }
    if let Some(og) = plan.overlay_graph(&body.cliques) {
        let (meta, _, _) = body
            .overlay
            .as_ref()
            .ok_or_else(|| corrupt("manifest overlay", "missing for a boundaried plan"))?;
        let (rebuilt, new_meta) = rebuild_sharded_component(&og, meta, body.eta)?;
        save_oracle_v2(overlay_snapshot_path(base), &rebuilt, &new_meta)?;
        body.overlay = Some((new_meta, og.n() as u64, og.m() as u64));
    }
    write_atomic(base, &encode_manifest(&body))?;
    Ok(ShardedCompactReport {
        shards: folded,
        epochs: body.epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Seed;
    use crate::shard::ShardedOracleBuilder;
    use crate::snapshot::append_journal;
    use psh_exec::ExecutionPolicy;
    use psh_graph::generators;
    use psh_graph::{DeltaOp, GraphDelta};
    use std::path::PathBuf;

    fn params() -> HopsetParams {
        HopsetParams {
            epsilon: 0.5,
            delta: 1.5,
            gamma1: 0.25,
            gamma2: 0.75,
            k_conf: 1.0,
        }
    }

    fn temp_base(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psh_manifest_{name}_{}", std::process::id()))
    }

    fn cleanup(base: &Path, shards: usize) {
        let _ = std::fs::remove_file(base);
        let _ = std::fs::remove_file(overlay_snapshot_path(base));
        for s in 0..shards {
            let sp = shard_snapshot_path(base, s);
            let _ = std::fs::remove_file(journal_path(&sp));
            let _ = std::fs::remove_file(sp);
        }
    }

    #[test]
    fn sharded_round_trip_preserves_answers() {
        let g = generators::grid(8, 8);
        let (run, parts) = ShardedOracleBuilder::new(4)
            .params(params())
            .seed(Seed(11))
            .execution(ExecutionPolicy::Sequential)
            .build_with_parts(&g)
            .unwrap();
        let built = run.artifact;
        let base = temp_base("round_trip");
        cleanup(&base, built.num_shards());
        save_sharded(&base, &built, &parts).unwrap();
        assert!(is_sharded_manifest(&base));
        let (loaded, lparts) = load_sharded(&base, LoadMode::Read).unwrap();
        assert_eq!(loaded.num_shards(), built.num_shards());
        assert_eq!(loaded.epochs(), built.epochs());
        assert_eq!(lparts.cliques, parts.cliques);
        assert_eq!(lparts.eta.to_bits(), parts.eta.to_bits());
        for (s, t) in [(0u32, 63u32), (5, 40), (17, 2)] {
            let a = built.query(s, t).0.distance;
            let b = loaded.query(s, t).0.distance;
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let ins = inspect_sharded(&base).unwrap();
        assert_eq!(ins.n, 64);
        assert_eq!(ins.shards.len(), built.num_shards());
        assert_eq!(ins.cut_edges, built.plan().cut_edges().len() as u64);
        assert_eq!(ins.boundary, built.plan().boundary_global().len() as u64);
        cleanup(&base, built.num_shards());
    }

    #[test]
    fn compact_folds_only_journaled_shards() {
        let g = generators::grid(8, 8);
        let (run, parts) = ShardedOracleBuilder::new(4)
            .params(params())
            .seed(Seed(12))
            .execution(ExecutionPolicy::Sequential)
            .build_with_parts(&g)
            .unwrap();
        let built = run.artifact;
        let k = built.num_shards();
        assert!(k >= 2, "need at least two shards for this test");
        let base = temp_base("compact");
        cleanup(&base, k);
        save_sharded(&base, &built, &parts).unwrap();

        // Journal an edge removal on shard 0 only (shard-local ids).
        let shard0 = owned_base_graph(built.shard(0));
        let target = shard0.edges()[0];
        let delta = GraphDelta::from_ops(
            shard0.n(),
            vec![DeltaOp::Delete {
                u: target.u,
                v: target.v,
            }],
        )
        .unwrap();
        append_journal(journal_path(shard_snapshot_path(&base, 0)), &delta).unwrap();
        let healthy_before = std::fs::read(shard_snapshot_path(&base, 1)).unwrap();

        let report = compact_sharded(&base).unwrap();
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].shard, 0);
        assert_eq!(report.shards[0].m_after, report.shards[0].m_before - 1);
        let mut expect_epochs = vec![0u64; k];
        expect_epochs[0] = 1;
        assert_eq!(report.epochs, expect_epochs);
        // Healthy shard snapshot is byte-identical on disk.
        assert_eq!(
            std::fs::read(shard_snapshot_path(&base, 1)).unwrap(),
            healthy_before
        );
        // The manifest reloads cleanly and reflects the fold.
        let (reloaded, _) = load_sharded(&base, LoadMode::Read).unwrap();
        assert_eq!(reloaded.epochs(), &expect_epochs[..]);
        assert_eq!(
            reloaded.shard(0).graph().m(),
            built.shard(0).graph().m() - 1
        );
        // No journal left behind.
        assert!(!journal_path(shard_snapshot_path(&base, 0)).exists());
        cleanup(&base, k);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let g = generators::grid(6, 6);
        let (run, parts) = ShardedOracleBuilder::new(2)
            .params(params())
            .seed(Seed(13))
            .execution(ExecutionPolicy::Sequential)
            .build_with_parts(&g)
            .unwrap();
        let built = run.artifact;
        let base = temp_base("corrupt");
        cleanup(&base, built.num_shards());
        save_sharded(&base, &built, &parts).unwrap();
        let mut bytes = std::fs::read(&base).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&base, &bytes).unwrap();
        match load_sharded(&base, LoadMode::Read) {
            Err(SnapshotError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        cleanup(&base, built.num_shards());
    }
}
