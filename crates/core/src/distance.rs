//! The `DistanceOracle` trait: one query surface for every oracle shape.
//!
//! [`crate::oracle::ApproxShortestPaths`] answers from a single
//! preprocessed graph; [`crate::shard::ShardedOracle`] stitches answers
//! across a partition. The serving stack above them —
//! [`crate::service::OracleService`], the wire tier in `psh-net`, the
//! `psh-serve`/`psh-server` bins — does not care which it holds, so it is
//! written against this trait. There is exactly one way to stand up a
//! serving stack: hand *any* `DistanceOracle` to
//! [`OracleService::new`](crate::service::OracleService::new) (or an
//! `Arc<dyn DistanceOracle>` to
//! [`from_arc`](crate::service::OracleService::from_arc)).
//!
//! The contract every implementation must honour:
//!
//! * **Soundness** — `query(s, t).0.distance` is never below the exact
//!   `s`–`t` distance in the graph being served (`upper_bound` reports
//!   this; all shipped implementations always return `true`).
//! * **Determinism** — answers *and costs* are byte-identical for every
//!   [`ExecutionPolicy`] and thread count, and `query_batch` returns
//!   exactly the per-pair `query` answers in input order.
//! * **Immutability** — an oracle value never changes after construction;
//!   hot swaps replace the whole `Arc` (see
//!   [`OracleService::swap_oracle`](crate::service::OracleService::swap_oracle)),
//!   which is what makes a batch's answers attributable to one epoch.

use crate::oracle::{ApproxShortestPaths, QueryResult};
use psh_exec::ExecutionPolicy;
use psh_graph::VertexId;
use psh_pram::Cost;

/// Shape and provenance of an oracle, uniform across implementations —
/// what the wire `Info` op and the bins report without downcasting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleDescriptor {
    /// Vertices in the served graph (the original graph for a sharded
    /// oracle, shard subgraphs + cut edges included).
    pub n: usize,
    /// Canonical undirected edges in the served graph.
    pub m: usize,
    /// Total shortcut edges backing the oracle (summed over shards and
    /// the overlay for a sharded oracle).
    pub hopset_edges: usize,
    /// Number of shards (`1` for a monolithic oracle).
    pub shards: usize,
    /// Whether any component serves straight off a mapped v2 snapshot.
    pub mapped: bool,
    /// Per-shard journal epochs, one entry per shard (empty for a
    /// monolithic oracle, which has no shard-local epoch).
    pub epochs: Vec<u64>,
}

/// A preprocessed structure that answers approximate `s`–`t` distance
/// queries. See the module docs for the soundness/determinism contract.
pub trait DistanceOracle: Send + Sync {
    /// Approximate `s`–`t` distance plus the work/depth spent answering.
    fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost);

    /// Answer a batch of pairs, fanned across the psh-exec pool. Answers
    /// come back in input order and are byte-identical for every policy;
    /// the default fans independent [`DistanceOracle::query`] calls with
    /// one pair per work unit and par-composes the costs.
    fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        let exec = policy.executor();
        let answered = exec.par_map(pairs, 1, |&(s, t)| self.query(s, t));
        let cost = Cost::par_all(answered.iter().map(|(_, c)| *c));
        (answered.into_iter().map(|(r, _)| r).collect(), cost)
    }

    /// Shape and provenance: vertex/edge counts, shard count, epochs.
    fn descriptor(&self) -> OracleDescriptor;
}

impl DistanceOracle for ApproxShortestPaths {
    fn query(&self, s: VertexId, t: VertexId) -> (QueryResult, Cost) {
        ApproxShortestPaths::query(self, s, t)
    }

    fn query_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
        policy: ExecutionPolicy,
    ) -> (Vec<QueryResult>, Cost) {
        ApproxShortestPaths::query_batch(self, pairs, policy)
    }

    fn descriptor(&self) -> OracleDescriptor {
        OracleDescriptor {
            n: self.graph().n(),
            m: self.graph().m(),
            hopset_edges: self.hopset_size(),
            shards: 1,
            mapped: self.is_mapped(),
            epochs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OracleBuilder, Seed};
    use psh_graph::generators;
    use std::sync::Arc;

    #[test]
    fn trait_object_answers_match_inherent_calls() {
        let g = generators::grid(8, 8);
        let run = OracleBuilder::new().seed(Seed(9)).build(&g).unwrap();
        let concrete = run.artifact;
        let expect = concrete.query(0, 63);
        let expect_desc = OracleDescriptor {
            n: 64,
            m: g.m(),
            hopset_edges: concrete.hopset_size(),
            shards: 1,
            mapped: false,
            epochs: Vec::new(),
        };
        let dynamic: Arc<dyn DistanceOracle> = Arc::new(concrete);
        assert_eq!(dynamic.query(0, 63), expect);
        assert_eq!(dynamic.descriptor(), expect_desc);
        let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i, 63 - i)).collect();
        let (seq, c_seq) = dynamic.query_batch(&pairs, ExecutionPolicy::Sequential);
        let (par, c_par) = dynamic.query_batch(&pairs, ExecutionPolicy::Parallel { threads: 4 });
        assert_eq!(seq, par);
        assert_eq!(c_seq, c_par);
        for (&(s, t), &r) in pairs.iter().zip(&seq) {
            assert_eq!(r, dynamic.query(s, t).0);
        }
    }
}
