//! The builder API for clustering, and the shared `Seed` / `Run` vocabulary
//! the whole workspace's pipeline layer is built from.
//!
//! Every user-facing construction in the workspace follows the same
//! contract, anchored here:
//!
//! * inputs are a borrowed graph — anything implementing
//!   [`psh_graph::GraphView`], an owned [`psh_graph::CsrGraph`] or an
//!   arena-backed [`psh_graph::CsrView`] alike — plus a [`Seed`]
//!   newtype, never a caller-threaded `&mut R`;
//! * outputs are a [`Run`] carrying the artifact, its
//!   [`psh_pram::Cost`], and the seed that produced it, so any run can be
//!   reproduced or cached by `(input, parameters, seed)`;
//! * invalid parameters are reported as typed errors, never panics.
//!
//! ```
//! use psh_cluster::api::{ClusterBuilder, Seed};
//! use psh_graph::generators;
//!
//! let g = generators::grid(8, 8);
//! let run = ClusterBuilder::new(0.5).seed(Seed(42)).build(&g).unwrap();
//! assert_eq!(run.artifact.n(), 64);
//! assert_eq!(run.seed, Seed(42));
//! assert!(run.cost.work > 0);
//! ```

use crate::error::ClusterError;
use crate::{engine, Clustering, ExponentialShifts};
use psh_exec::{ExecutionPolicy, Executor};
use psh_graph::GraphView;
use psh_pram::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named RNG seed: the reproducibility handle of every construction.
///
/// Two runs of the same builder on the same graph with the same `Seed`
/// produce byte-identical artifacts (enforced by the seed-equivalence
/// integration tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Seed(pub u64);

impl Seed {
    /// The deterministic generator this seed denotes.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }

    /// Derive a distinct, deterministic child seed (for constructions
    /// that fan out into independently seeded sub-runs).
    pub fn child(self, index: u64) -> Seed {
        // SplitMix64-style mix so child streams are unrelated.
        let mut z = self.0 ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Seed(z ^ (z >> 31))
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed:{}", self.0)
    }
}

/// One completed construction: the artifact plus the evidence needed to
/// reproduce it (`seed`) and to account for it in the paper's currency
/// (`cost`).
#[derive(Clone, Debug, PartialEq)]
pub struct Run<A> {
    /// What was built.
    pub artifact: A,
    /// Work/depth spent building it (the PRAM model of §2).
    pub cost: Cost,
    /// The seed that produced it; re-running with this seed rebuilds the
    /// identical artifact.
    pub seed: Seed,
}

impl<A> Run<A> {
    /// Discard the provenance, keeping the artifact.
    pub fn into_artifact(self) -> A {
        self.artifact
    }

    /// Transform the artifact, keeping cost and seed.
    pub fn map<B>(self, f: impl FnOnce(A) -> B) -> Run<B> {
        Run {
            artifact: f(self.artifact),
            cost: self.cost,
            seed: self.seed,
        }
    }

    /// Split into `(artifact, cost)` — the legacy tuple convention.
    pub fn into_parts(self) -> (A, Cost) {
        (self.artifact, self.cost)
    }
}

/// Builder for exponential start time clustering (Algorithm 1).
///
/// `β` controls the granularity: large `β` (tiny shifts) gives many small
/// clusters; small `β` gives few large ones. See the crate docs for the
/// guarantees (Lemmas 2.1–2.3).
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    beta: f64,
    seed: Seed,
    policy: ExecutionPolicy,
}

impl ClusterBuilder {
    /// Start a clustering with parameter `beta` (validated at `build`).
    pub fn new(beta: f64) -> Self {
        ClusterBuilder {
            beta,
            seed: Seed::default(),
            policy: ExecutionPolicy::default(),
        }
    }

    /// Set the RNG seed (default: `Seed(0)`).
    pub fn seed(mut self, seed: impl Into<Seed>) -> Self {
        self.seed = seed.into();
        self
    }

    /// Choose how the race executes (default: [`ExecutionPolicy::from_env`],
    /// i.e. `PSH_THREADS` or the machine's parallelism). The artifact and
    /// its [`psh_pram::Cost`] are byte-identical for every policy — this
    /// knob only selects wall-clock behavior.
    pub fn execution(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Check parameters without building.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(ClusterError::InvalidBeta { beta: self.beta });
        }
        Ok(())
    }

    /// Run the clustering. Empty graphs yield an empty clustering rather
    /// than a panic. Generic over [`GraphView`]: materialized graphs and
    /// arena-backed views cluster identically.
    pub fn build<G: GraphView>(&self, g: &G) -> Result<Run<Clustering>, ClusterError> {
        let mut rng = self.seed.rng();
        let (artifact, cost) = self.build_with_rng(g, &mut rng)?;
        Ok(Run {
            artifact,
            cost,
            seed: self.seed,
        })
    }

    /// Run the clustering against a caller-supplied generator. Prefer
    /// [`ClusterBuilder::build`], which records the seed in the returned
    /// [`Run`]; this spine exists for callers that thread one RNG through
    /// a larger composite construction.
    pub fn build_with_rng<G: GraphView, R: Rng>(
        &self,
        g: &G,
        rng: &mut R,
    ) -> Result<(Clustering, Cost), ClusterError> {
        self.build_with_rng_on(&self.policy.executor(), g, rng)
    }

    /// [`ClusterBuilder::build_with_rng`] on an explicit executor — the
    /// entry point used by callers that already hold one (the hopset
    /// recursion runs thousands of clusterings and shares a single pool).
    pub fn build_with_rng_on<G: GraphView, R: Rng>(
        &self,
        exec: &Executor,
        g: &G,
        rng: &mut R,
    ) -> Result<(Clustering, Cost), ClusterError> {
        self.validate()?;
        if g.n() == 0 {
            return Ok((empty_clustering(), Cost::ZERO));
        }
        let shifts = ExponentialShifts::sample(g.n(), self.beta, rng);
        Ok(engine::shifted_cluster_with(exec, g, &shifts))
    }

    /// Run with pre-sampled shifts (experiments replaying a recorded shift
    /// vector). The shift count must match the vertex count.
    ///
    /// Returns a bare `(Clustering, Cost)` rather than a [`Run`]: the
    /// artifact comes from the caller's shifts, not from any seed, so
    /// there is no seed that could honestly claim provenance.
    pub fn build_with_shifts<G: GraphView>(
        &self,
        g: &G,
        shifts: &ExponentialShifts,
    ) -> Result<(Clustering, Cost), ClusterError> {
        self.validate()?;
        if shifts.delta.len() != g.n() {
            return Err(ClusterError::ShiftCountMismatch {
                shifts: shifts.delta.len(),
                vertices: g.n(),
            });
        }
        Ok(engine::shifted_cluster_with(
            &self.policy.executor(),
            g,
            shifts,
        ))
    }
}

fn empty_clustering() -> Clustering {
    Clustering {
        center: Vec::new(),
        parent: Vec::new(),
        dist_to_center: Vec::new(),
        cluster_id: Vec::new(),
        centers: Vec::new(),
        num_clusters: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::{generators, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_matches_the_rng_spine_for_same_seed() {
        // `build` is sugar for seeding an StdRng and calling the spine —
        // the seed recorded in the Run must honestly reproduce it.
        let g = generators::grid(10, 10);
        let run = ClusterBuilder::new(0.4).seed(Seed(9)).build(&g).unwrap();
        let (spine, spine_cost) = ClusterBuilder::new(0.4)
            .build_with_rng(&g, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(run.artifact, spine);
        assert_eq!(run.cost, spine_cost);
        assert_eq!(run.seed, Seed(9));
    }

    #[test]
    fn invalid_beta_is_an_error_not_a_panic() {
        let g = generators::path(4);
        for beta in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ClusterBuilder::new(beta).build(&g).unwrap_err();
            assert!(
                matches!(err, ClusterError::InvalidBeta { .. }),
                "beta={beta}"
            );
        }
    }

    #[test]
    fn empty_graph_yields_empty_clustering() {
        let g = CsrGraph::from_edges(0, std::iter::empty());
        let run = ClusterBuilder::new(0.5).build(&g).unwrap();
        assert_eq!(run.artifact.n(), 0);
        assert_eq!(run.artifact.num_clusters, 0);
    }

    #[test]
    fn shift_replay_requires_matching_length() {
        let g = generators::path(8);
        let shifts = ExponentialShifts::sample(4, 0.5, &mut Seed(1).rng());
        let err = ClusterBuilder::new(0.5)
            .build_with_shifts(&g, &shifts)
            .unwrap_err();
        assert!(matches!(err, ClusterError::ShiftCountMismatch { .. }));
    }

    #[test]
    fn child_seeds_are_distinct_and_deterministic() {
        let s = Seed(7);
        assert_eq!(s.child(0), s.child(0));
        assert_ne!(s.child(0), s.child(1));
        assert_ne!(s.child(1), s.child(2));
    }
}
