//! Typed errors for clustering construction.
//!
//! The builder API ([`crate::api::ClusterBuilder`]) validates its inputs
//! up front and reports violations as values instead of panicking —
//! the contract every user-facing construction path in the workspace
//! follows (higher layers wrap this type in `psh_core::error::PshError`).

use std::fmt;

/// Why a clustering could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// `β` must be positive and finite: shifts are drawn from `Exp(β)`.
    InvalidBeta { beta: f64 },
    /// The shift vector handed to a replay run has the wrong length.
    ShiftCountMismatch { shifts: usize, vertices: usize },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidBeta { beta } => {
                write!(
                    f,
                    "clustering parameter beta must be positive and finite, got {beta}"
                )
            }
            ClusterError::ShiftCountMismatch { shifts, vertices } => {
                write!(
                    f,
                    "shift vector covers {shifts} vertices, graph has {vertices}"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}
