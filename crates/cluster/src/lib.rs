//! # psh-cluster — Exponential Start Time Clustering
//!
//! Algorithm 1 of the paper (from Miller–Peng–Xu, SPAA 2013):
//!
//! > 1. For each vertex `u`, pick `δ_u` independently from `Exp(β)`.
//! > 2. Assign each `v ∈ V` to `argmin_u { dist(u, v) − δ_u }`; if `v = u`,
//! >    it is the center of its cluster.
//! > 3. Return the clusters along with a spanning tree on each cluster
//! >    rooted at its center.
//!
//! Equivalently (Appendix A): add a super-source `S` with an edge of length
//! `δ_max − δ_u` to every vertex `u` and build a shortest-path tree from
//! `S`; the subtrees hanging off `S` are the clusters. The race picture —
//! every vertex starts racing at time `δ_max − δ_u` and claims whatever it
//! reaches first — is what the implementation in [`engine`] runs, level by
//! level on integer distance parts with fractional-part tie-breaking,
//! exactly as Appendix A prescribes for integer-weight graphs.
//!
//! Guarantees reproduced empirically by the experiment suite:
//!
//! * **Lemma 2.1** — every cluster's spanning tree has radius
//!   `≤ k·log n/β` from its center with probability `≥ 1 − 1/n^{k−1}`.
//! * **Lemma 2.2** — a ball of radius `r` intersects `k` or more clusters
//!   with probability at most `(1 − exp(−2rβ))^{k−1}`.
//! * **Corollary 2.3** — an edge of weight `w` is cut with probability at
//!   most `1 − exp(−β·w) < β·w`.
//!
//! The clustering runs in `O(β⁻¹ log n)` rounds of parallel search with
//! high probability and linear work — measured by the returned
//! [`psh_pram::Cost`].

pub mod analysis;
pub mod api;
pub mod clustering;
pub mod engine;
pub mod error;
pub mod shifts;

pub use api::{ClusterBuilder, Run, Seed};
pub use clustering::Clustering;
pub use error::ClusterError;
pub use shifts::ExponentialShifts;

use psh_graph::GraphView;
use psh_pram::Cost;

/// Run ESTC with pre-sampled shifts (useful for experiments that need to
/// inspect or replay the shift vector).
pub fn est_cluster_with_shifts<G: GraphView>(
    g: &G,
    shifts: &ExponentialShifts,
) -> (Clustering, Cost) {
    engine::shifted_cluster(g, shifts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn huge_beta_gives_singletons() {
        // β = 50: all δ_u ≈ 0, so every vertex wins itself at round 0.
        let g = generators::grid(8, 8);
        let c = ClusterBuilder::new(50.0)
            .seed(Seed(1))
            .build(&g)
            .unwrap()
            .artifact;
        assert_eq!(c.num_clusters, 64);
        for v in 0..64u32 {
            assert_eq!(c.center[v as usize], v);
        }
    }

    #[test]
    fn tiny_beta_gives_few_clusters() {
        // β = 0.01 on a 100-vertex path: shifts spread over ~hundreds of
        // units, so a handful of early starters swallow everything.
        let g = generators::path(100);
        let c = ClusterBuilder::new(0.01)
            .seed(Seed(2))
            .build(&g)
            .unwrap()
            .artifact;
        assert!(
            c.num_clusters <= 5,
            "expected few clusters, got {}",
            c.num_clusters
        );
    }

    #[test]
    fn clustering_is_deterministic_given_seed() {
        let g = generators::connected_random(200, 300, &mut StdRng::seed_from_u64(7));
        let builder = ClusterBuilder::new(0.3).seed(Seed(99));
        let a = builder.build(&g).unwrap().artifact;
        let b = builder.build(&g).unwrap().artifact;
        assert_eq!(a.center, b.center);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.dist_to_center, b.dist_to_center);
    }

    #[test]
    fn every_graph_vertex_is_assigned() {
        // even on a disconnected graph
        let g = psh_graph::CsrGraph::from_unit_edges(6, [(0, 1), (2, 3)]);
        let c = ClusterBuilder::new(0.5)
            .seed(Seed(3))
            .build(&g)
            .unwrap()
            .artifact;
        c.validate(&g).unwrap();
        assert!(c.num_clusters >= 2, "isolated pieces cannot share clusters");
    }

    #[test]
    fn depth_scales_inversely_with_beta() {
        let g = generators::path(400);
        let cost_fine = ClusterBuilder::new(1.0)
            .seed(Seed(4))
            .build(&g)
            .unwrap()
            .cost;
        let cost_coarse = ClusterBuilder::new(0.02)
            .seed(Seed(4))
            .build(&g)
            .unwrap()
            .cost;
        assert!(
            cost_coarse.depth > cost_fine.depth,
            "smaller β explores longer: {} vs {}",
            cost_coarse.depth,
            cost_fine.depth
        );
    }
}
