//! The output of exponential start time clustering: a partition of the
//! vertex set into clusters, each with a designated center and a spanning
//! tree rooted there (certifying the cluster diameter, per Lemma 2.1).

use psh_graph::{Edge, GraphView, VertexId, Weight};

/// A clustering of a graph's vertex set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// `center[v]` — the center vertex of `v`'s cluster.
    pub center: Vec<VertexId>,
    /// `parent[v]` — `v`'s parent in its cluster's spanning tree
    /// (`parent[c] == c` for centers).
    pub parent: Vec<VertexId>,
    /// `dist_to_center[v]` — tree distance from the center to `v`
    /// (integer parts; exact on integer-weight graphs).
    pub dist_to_center: Vec<Weight>,
    /// Dense cluster id per vertex: `cluster_id[v] in 0..num_clusters`.
    pub cluster_id: Vec<u32>,
    /// `centers[cid]` — the center vertex of cluster `cid`.
    pub centers: Vec<VertexId>,
    /// Number of clusters.
    pub num_clusters: usize,
}

impl Clustering {
    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.center.len()
    }

    /// Cluster sizes, indexed by dense cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_clusters];
        for &c in &self.cluster_id {
            s[c as usize] += 1;
        }
        s
    }

    /// Members of each cluster, indexed by dense cluster id.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (v, &c) in self.cluster_id.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }

    /// True if edge `e` has endpoints in different clusters.
    #[inline]
    pub fn is_cut(&self, e: &Edge) -> bool {
        self.cluster_id[e.u as usize] != self.cluster_id[e.v as usize]
    }

    /// Canonical edge ids of all cut (inter-cluster) edges.
    pub fn cut_edges<G: GraphView>(&self, g: &G) -> Vec<u32> {
        g.edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| self.is_cut(e))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// The spanning forest as original-graph edges `(v, parent[v])` with
    /// the tree edge weight, one per non-center vertex. These are exactly
    /// the `F` edges Algorithm 2 puts into the spanner.
    pub fn forest_edges(&self) -> Vec<Edge> {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p != v as u32)
            .map(|(v, &p)| {
                let w = self.dist_to_center[v] - self.dist_to_center[p as usize];
                Edge::new(v as u32, p, w.max(1))
            })
            .collect()
    }

    /// Radius (max tree distance from the center) of each cluster.
    pub fn radii(&self) -> Vec<Weight> {
        let mut r = vec![0; self.num_clusters];
        for (v, &c) in self.cluster_id.iter().enumerate() {
            r[c as usize] = r[c as usize].max(self.dist_to_center[v]);
        }
        r
    }

    /// The largest cluster radius (0 for all-singleton clusterings).
    pub fn max_radius(&self) -> Weight {
        self.radii().into_iter().max().unwrap_or(0)
    }

    /// Check structural invariants against the graph this clustering was
    /// computed on. Returns a description of the first violation, if any.
    ///
    /// Invariants:
    /// 1. centers are self-assigned fixpoints (`center[c] == c`,
    ///    `parent[c] == c`, `dist_to_center[c] == 0`);
    /// 2. every non-center vertex's parent is an actual graph neighbor, in
    ///    the same cluster, with a consistent tree-distance telescope
    ///    (`dist[v] == dist[parent] + w` for some edge of weight `w`;
    ///    on integer graphs the engine guarantees exactness);
    /// 3. dense ids and the `centers` table are mutually consistent.
    pub fn validate<G: GraphView>(&self, g: &G) -> Result<(), String> {
        if self.center.len() != g.n() {
            return Err(format!(
                "clustering covers {} vertices, graph has {}",
                self.center.len(),
                g.n()
            ));
        }
        for (cid, &c) in self.centers.iter().enumerate() {
            if self.center[c as usize] != c {
                return Err(format!("center {c} is not self-assigned"));
            }
            if self.parent[c as usize] != c {
                return Err(format!("center {c} has a parent"));
            }
            if self.dist_to_center[c as usize] != 0 {
                return Err(format!("center {c} at nonzero distance"));
            }
            if self.cluster_id[c as usize] != cid as u32 {
                return Err(format!("center {c} has wrong dense id"));
            }
        }
        for v in 0..g.n() as u32 {
            let p = self.parent[v as usize];
            let c = self.center[v as usize];
            if self.center[c as usize] != c {
                return Err(format!("vertex {v}: center {c} is not a center"));
            }
            if p == v {
                if c != v {
                    return Err(format!("vertex {v} is a root but not a center"));
                }
                continue;
            }
            if self.center[p as usize] != c {
                return Err(format!("vertex {v}: parent {p} in different cluster"));
            }
            let Some((_, w)) = g.neighbors(v).find(|&(t, _)| t == p) else {
                return Err(format!("vertex {v}: parent {p} is not a neighbor"));
            };
            let expect = self.dist_to_center[p as usize] + w;
            if self.dist_to_center[v as usize] != expect {
                return Err(format!(
                    "vertex {v}: tree distance {} != parent {} + w {}",
                    self.dist_to_center[v as usize], self.dist_to_center[p as usize], w
                ));
            }
        }
        if self.centers.len() != self.num_clusters {
            return Err("centers table length mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterBuilder, Seed};
    use psh_graph::{generators, CsrGraph};

    fn clustered_grid(beta: f64, seed: u64) -> (CsrGraph, Clustering) {
        let g = generators::grid(10, 10);
        let c = ClusterBuilder::new(beta)
            .seed(Seed(seed))
            .build(&g)
            .unwrap()
            .artifact;
        (g, c)
    }

    #[test]
    fn validate_accepts_engine_output() {
        let (g, c) = clustered_grid(0.4, 5);
        c.validate(&g).unwrap();
    }

    #[test]
    fn sizes_sum_to_n() {
        let (_, c) = clustered_grid(0.4, 6);
        assert_eq!(c.sizes().iter().sum::<usize>(), 100);
        assert_eq!(c.members().iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn forest_edges_are_graph_edges_and_span_clusters() {
        let (g, c) = clustered_grid(0.4, 7);
        let forest = c.forest_edges();
        assert_eq!(forest.len(), g.n() - c.num_clusters);
        for e in &forest {
            assert!(
                g.neighbors(e.u).any(|(t, _)| t == e.v),
                "forest edge ({}, {}) not in graph",
                e.u,
                e.v
            );
            assert!(!c.is_cut(e), "forest edge crosses clusters");
        }
    }

    #[test]
    fn cut_plus_internal_equals_m() {
        let (g, c) = clustered_grid(0.5, 8);
        let cut = c.cut_edges(&g).len();
        let internal = g.edges().iter().filter(|e| !c.is_cut(e)).count();
        assert_eq!(cut + internal, g.m());
    }

    #[test]
    fn radii_bound_dist_to_center() {
        let (_, c) = clustered_grid(0.3, 9);
        let radii = c.radii();
        for (v, &cid) in c.cluster_id.iter().enumerate() {
            assert!(c.dist_to_center[v] <= radii[cid as usize]);
        }
        assert_eq!(c.max_radius(), radii.iter().copied().max().unwrap());
    }

    #[test]
    fn validate_catches_corruption() {
        let (g, mut c) = clustered_grid(0.4, 10);
        // corrupt a parent pointer to a non-neighbor
        let victim = (0..c.n())
            .find(|&v| c.parent[v] != v as u32)
            .expect("some non-center exists");
        c.parent[victim] = if victim == 0 { 99 } else { 0 };
        // vertex 0/99 might coincidentally be a neighbor in the grid;
        // pick the far corner instead to be safe
        let far = 99 - victim as u32;
        if !g.neighbors(victim as u32).any(|(t, _)| t == far) {
            c.parent[victim] = far;
        }
        assert!(c.validate(&g).is_err());
    }
}
