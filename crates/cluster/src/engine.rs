//! The clustering race: a deterministic, bucketed, multi-source shortest
//! path computation with per-vertex start times, expressed as a
//! [`Frontier`] on the shared level-synchronous engine
//! ([`psh_graph::frontier`]).
//!
//! Every vertex `u` is born in integer round `start_int[u]` and races
//! outward; a vertex is assigned to the first racer that reaches it, which
//! by construction is `argmin_u { (δ_max − δ_u) + dist(u, v) }` —
//! Algorithm 1's assignment rule. On integer-weight graphs the fractional
//! part of any arrival time equals the fractional part of the racer's start
//! time, so processing integer rounds in order with fractional tie-breaking
//! (then center id, then tree parent id) resolves the true argmin exactly
//! and deterministically — Appendix A's implementation, with ties fixed
//! rather than "arbitrary" so reruns are bit-identical for any
//! [`psh_exec::ExecutionPolicy`] and thread count.
//!
//! Cost model (engine-measured): work = claims examined + edges scanned +
//! winners committed, counted by the engine's `OpCounter`; depth = one
//! round per integer time step at which some vertex is assigned (the
//! race's level-synchronous schedule), counted from the rounds the engine
//! actually ran. Lemma 2.1 bounds the number of rounds by `O(β⁻¹ log n)`
//! w.h.p.

use crate::clustering::Clustering;
use crate::shifts::ExponentialShifts;
use psh_exec::Executor;
use psh_graph::frontier::{drive, BucketQueue, Frontier};
use psh_graph::{GraphView, VertexId, Weight};
use psh_pram::Cost;

const UNASSIGNED: u32 = u32::MAX;

/// A pending claim: `center` (with tie-break key `frac`) tries to absorb
/// `target`, reached through tree edge from `parent`. Ordered
/// target-first (engine contract); among claims on the same target the
/// minimum `(frac, center, parent)` wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Claim {
    target: VertexId,
    frac: u32,
    center: VertexId,
    parent: VertexId,
}

/// The race's mutable state plus the read-only shift vector.
struct Race<'a, G> {
    g: &'a G,
    shifts: &'a ExponentialShifts,
    center: Vec<u32>,
    parent: Vec<u32>,
    dist_to_center: Vec<Weight>,
}

impl<G: GraphView> Frontier for Race<'_, G> {
    type Claim = Claim;

    fn target(c: &Claim) -> VertexId {
        c.target
    }

    fn live(&self, c: &Claim) -> bool {
        self.center[c.target as usize] == UNASSIGNED
    }

    fn commit(&mut self, c: &Claim, round: u64) {
        self.center[c.target as usize] = c.center;
        self.parent[c.target as usize] = c.parent;
        self.dist_to_center[c.target as usize] = round - self.shifts.start_int[c.center as usize];
    }

    fn expand(&self, c: &Claim, round: u64, out: &mut Vec<(u64, Claim)>) -> u64 {
        // Each newly assigned vertex claims its unassigned neighbors at
        // the arrival round `round + w`.
        let v = c.target;
        let cen = c.center;
        for (w, wt) in self.g.neighbors(v) {
            if self.center[w as usize] == UNASSIGNED {
                out.push((
                    round.saturating_add(wt),
                    Claim {
                        target: w,
                        frac: self.shifts.start_frac[cen as usize],
                        center: cen,
                        parent: v,
                    },
                ));
            }
        }
        self.g.degree(v) as u64
    }
}

/// Run the race defined by `shifts` on `g` with the process-default
/// executor. See module docs. Generic over [`GraphView`], so the hopset
/// recursion can race directly on arena-backed cluster views.
pub fn shifted_cluster<G: GraphView>(g: &G, shifts: &ExponentialShifts) -> (Clustering, Cost) {
    shifted_cluster_with(&Executor::current(), g, shifts)
}

/// Run the race on an explicit executor. Artifacts are byte-identical
/// across executors; only wall-clock changes.
pub fn shifted_cluster_with<G: GraphView>(
    exec: &Executor,
    g: &G,
    shifts: &ExponentialShifts,
) -> (Clustering, Cost) {
    let n = g.n();
    assert_eq!(shifts.len(), n, "shift vector must cover every vertex");

    let mut race = Race {
        g,
        shifts,
        center: vec![UNASSIGNED; n],
        parent: vec![UNASSIGNED; n],
        dist_to_center: vec![0 as Weight; n],
    };

    // Birth claims: every vertex tries to claim itself at its start round.
    let mut queue = BucketQueue::new();
    for v in 0..n as u32 {
        queue.push(
            shifts.start_int[v as usize],
            Claim {
                target: v,
                frac: shifts.start_frac[v as usize],
                center: v,
                parent: v,
            },
        );
    }

    let cost = Cost::flat(n as u64).then(drive(exec, &mut queue, &mut race));

    debug_assert!(race.center.iter().all(|&c| c != UNASSIGNED));

    // Dense cluster ids in increasing center-vertex order (deterministic).
    let center = race.center;
    let mut centers: Vec<VertexId> = (0..n as u32).filter(|&v| center[v as usize] == v).collect();
    centers.sort_unstable();
    let mut dense = vec![UNASSIGNED; n];
    for (cid, &c) in centers.iter().enumerate() {
        dense[c as usize] = cid as u32;
    }
    let cluster_id: Vec<u32> = center.iter().map(|&c| dense[c as usize]).collect();
    let num_clusters = centers.len();
    let cost = cost.then(Cost::flat(n as u64));

    (
        Clustering {
            center,
            parent: race.parent,
            dist_to_center: race.dist_to_center,
            cluster_id,
            centers,
            num_clusters,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psh_exec::ExecutionPolicy;
    use psh_graph::generators;
    use psh_graph::traversal::dijkstra;
    use psh_graph::{CsrGraph, INF};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force reference: assign v to argmin over u of
    /// (δmax − δ_u) + dist(u, v), using exact real-valued keys, ties broken
    /// by smaller quantized frac then center id (matching the engine).
    fn brute_force_assignment(g: &CsrGraph, shifts: &ExponentialShifts) -> Vec<u32> {
        let n = g.n();
        let all_dist: Vec<Vec<u64>> = (0..n as u32).map(|u| dijkstra(g, u).dist).collect();
        (0..n)
            .map(|v| {
                let mut best: Option<(u64, u32, u32)> = None; // (int_key, frac, center)
                for u in 0..n as u32 {
                    let d = all_dist[u as usize][v];
                    if d == INF {
                        continue;
                    }
                    let key = (
                        shifts.start_int[u as usize] + d,
                        shifts.start_frac[u as usize],
                        u,
                    );
                    if best.is_none() || key < best.unwrap() {
                        best = Some(key);
                    }
                }
                best.unwrap().2
            })
            .collect()
    }

    #[test]
    fn engine_matches_brute_force_unit_weights() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(40, 70, &mut rng);
            let shifts = ExponentialShifts::sample(40, 0.4, &mut rng);
            let (c, _) = shifted_cluster(&g, &shifts);
            let expect = brute_force_assignment(&g, &shifts);
            assert_eq!(c.center, expect, "seed {seed}");
        }
    }

    #[test]
    fn engine_matches_brute_force_weighted() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let base = generators::connected_random(30, 40, &mut rng);
            let g = generators::with_uniform_weights(&base, 1, 7, &mut rng);
            let shifts = ExponentialShifts::sample(30, 0.15, &mut rng);
            let (c, _) = shifted_cluster(&g, &shifts);
            let expect = brute_force_assignment(&g, &shifts);
            assert_eq!(c.center, expect, "seed {seed}");
        }
    }

    #[test]
    fn output_validates_on_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = generators::grid(12, 12);
        let g = generators::with_uniform_weights(&base, 1, 5, &mut rng);
        let shifts = ExponentialShifts::sample(g.n(), 0.1, &mut rng);
        let (c, _) = shifted_cluster(&g, &shifts);
        c.validate(&g).unwrap();
    }

    #[test]
    fn tree_distance_bounded_by_center_shift() {
        // A vertex can only be reached before its own birth if the center's
        // key beats its start: dist_to_center[v] <= start_int[v] - start_int[c]
        // + 1 slack; in particular dist <= delta of the center (the race
        // argument of Lemma 2.1's proof: d(u,v) <= δ_u for the winner u).
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::grid(15, 15);
        let shifts = ExponentialShifts::sample(g.n(), 0.2, &mut rng);
        let (c, _) = shifted_cluster(&g, &shifts);
        for v in 0..g.n() {
            let cen = c.center[v] as usize;
            // arrival key = start(c) + d <= start(v) (+1 for rounding)
            assert!(
                shifts.start_int[cen] + c.dist_to_center[v] <= shifts.start_int[v] + 1,
                "vertex {v} claimed after its own birth round"
            );
            assert!(
                (c.dist_to_center[v] as f64) <= shifts.delta[cen] + 1.0,
                "radius exceeds the center's shift"
            );
        }
    }

    #[test]
    fn works_on_single_vertex_graph() {
        let g = CsrGraph::from_edges(1, std::iter::empty());
        let shifts = ExponentialShifts::sample(1, 0.5, &mut StdRng::seed_from_u64(7));
        let (c, _) = shifted_cluster(&g, &shifts);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.center, vec![0]);
    }

    #[test]
    fn byte_identical_across_executors_and_thread_counts() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = generators::connected_random(500, 1500, &mut rng);
        let g = generators::with_uniform_weights(&base, 1, 9, &mut rng);
        let shifts = ExponentialShifts::sample(g.n(), 0.25, &mut rng);
        let (seq, seq_cost) = shifted_cluster_with(&Executor::sequential(), &g, &shifts);
        for threads in [2, 4, 8] {
            let exec = Executor::new(ExecutionPolicy::Parallel { threads });
            let (par, par_cost) = shifted_cluster_with(&exec, &g, &shifts);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_cost, par_cost, "cost model is execution-independent");
        }
    }
}
