//! Exponential shifts and their integer/fractional decomposition.
//!
//! The clustering races each vertex `u` starting at time
//! `s_u = δ_max − δ_u` with `δ_u ~ Exp(β)`. On integer-weight graphs every
//! subsequent arrival time is `s_u + (integer)`, so its fractional part is
//! `frac(s_u)` forever: Appendix A's implementation buckets the race by
//! integer time and breaks ties within a bucket by the fractional part.
//! We pre-quantize the fraction to 32 bits so a tie-break is a single
//! integer comparison (residual collisions — probability ~2⁻³² per pair —
//! fall through to the center id, keeping everything deterministic).
//!
//! `Exp(β)` is sampled by inverse CDF: `δ = −ln(1−U)/β` with `U` uniform in
//! `[0,1)`; this avoids a dependency on `rand_distr`.

use rand::Rng;

/// Per-vertex exponential shifts plus their start-time decomposition.
#[derive(Clone, Debug)]
pub struct ExponentialShifts {
    /// The raw shift `δ_u` drawn from `Exp(beta)`.
    pub delta: Vec<f64>,
    /// `floor(δ_max − δ_u)` — the integer round in which `u` starts racing.
    pub start_int: Vec<u64>,
    /// `frac(δ_max − δ_u)` quantized to 32 bits — the tie-break key.
    pub start_frac: Vec<u32>,
    /// Largest shift drawn.
    pub delta_max: f64,
    /// The `β` used to sample.
    pub beta: f64,
}

impl ExponentialShifts {
    /// Sample shifts for `n` vertices from `Exp(beta)`.
    ///
    /// Panics if `beta <= 0` or `n == 0`.
    pub fn sample<R: Rng>(n: usize, beta: f64, rng: &mut R) -> Self {
        assert!(beta > 0.0, "beta must be positive, got {beta}");
        assert!(n > 0, "cannot sample shifts for an empty vertex set");
        let delta: Vec<f64> = (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                // -ln(1-U)/β; 1-U ∈ (0,1] so the log argument is never 0
                -(1.0 - u).ln() / beta
            })
            .collect();
        Self::from_deltas(delta, beta)
    }

    /// Build the decomposition from explicit shift values (used by tests
    /// and by experiments replaying recorded shifts).
    pub fn from_deltas(delta: Vec<f64>, beta: f64) -> Self {
        let delta_max = delta.iter().copied().fold(0.0f64, f64::max);
        let mut start_int = Vec::with_capacity(delta.len());
        let mut start_frac = Vec::with_capacity(delta.len());
        for &d in &delta {
            let start = (delta_max - d).max(0.0);
            let int = start.floor();
            let frac = start - int;
            start_int.push(int as u64);
            // quantize to 32 bits; clamp guards frac == 1.0 - ulp edge cases
            start_frac.push(((frac * 4_294_967_296.0) as u64).min(u32::MAX as u64) as u32);
        }
        ExponentialShifts {
            delta,
            start_int,
            start_frac,
            delta_max,
            beta,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// True if empty (never the case for sampled shifts).
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_tracks_one_over_beta() {
        let mut rng = StdRng::seed_from_u64(1);
        let beta = 0.5;
        let s = ExponentialShifts::sample(20_000, beta, &mut rng);
        let mean: f64 = s.delta.iter().sum::<f64>() / s.delta.len() as f64;
        let expect = 1.0 / beta;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "Exp(β) sample mean {mean} should be near {expect}"
        );
    }

    #[test]
    fn memorylessness_spot_check() {
        // P(δ > a+b | δ > a) ≈ P(δ > b) — the property Lemma 2.2's proof uses
        let mut rng = StdRng::seed_from_u64(2);
        let s = ExponentialShifts::sample(100_000, 1.0, &mut rng);
        let (a, b) = (0.7, 0.9);
        let beyond_a = s.delta.iter().filter(|&&d| d > a).count() as f64;
        let beyond_ab = s.delta.iter().filter(|&&d| d > a + b).count() as f64;
        let beyond_b = s.delta.iter().filter(|&&d| d > b).count() as f64;
        let cond = beyond_ab / beyond_a;
        let uncond = beyond_b / s.len() as f64;
        assert!(
            (cond - uncond).abs() < 0.02,
            "memorylessness violated: {cond} vs {uncond}"
        );
    }

    #[test]
    fn start_times_decompose_consistently() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = ExponentialShifts::sample(1000, 0.3, &mut rng);
        for i in 0..s.len() {
            let start = (s.delta_max - s.delta[i]).max(0.0);
            let recon = s.start_int[i] as f64 + s.start_frac[i] as f64 / 4_294_967_296.0;
            assert!(
                (start - recon).abs() < 1e-6,
                "vertex {i}: start {start} != reconstruction {recon}"
            );
        }
    }

    #[test]
    fn max_shift_vertex_starts_at_zero() {
        let s = ExponentialShifts::from_deltas(vec![0.25, 3.75, 1.5], 1.0);
        assert_eq!(s.start_int[1], 0);
        assert_eq!(s.start_frac[1], 0);
        assert_eq!(s.start_int[0], 3); // 3.75 - 0.25 = 3.5
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_nonpositive_beta() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = ExponentialShifts::sample(10, 0.0, &mut rng);
    }
}
