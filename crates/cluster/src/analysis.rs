//! Empirical probes for the clustering's probabilistic guarantees.
//!
//! These functions power the `lemma_*` experiment binaries in
//! `crates/bench/src/bin/`: measuring cut
//! probabilities (Corollary 2.3), ball–cluster intersection counts
//! (Lemma 2.2 / Corollary 3.1), and cluster radii (Lemma 2.1) so the
//! benchmark harness can print measured-vs-predicted curves.

use crate::clustering::Clustering;
use psh_graph::traversal::dial::dial_sssp_bounded;
use psh_graph::{CsrGraph, VertexId, Weight, INF};
use std::collections::HashSet;

/// Cut statistics for a clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutStats {
    /// Number of inter-cluster edges.
    pub cut: usize,
    /// Total number of edges.
    pub total: usize,
    /// `cut / total` (0 for edgeless graphs).
    pub fraction: f64,
}

/// Count cut edges and the cut fraction.
pub fn cut_stats(g: &CsrGraph, c: &Clustering) -> CutStats {
    let cut = g.edges().iter().filter(|e| c.is_cut(e)).count();
    let total = g.m();
    CutStats {
        cut,
        total,
        fraction: if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        },
    }
}

/// Per-edge cut indicators weighted by edge weight, for checking the
/// Corollary 2.3 curve `P(cut) ≤ 1 − exp(−β·w)` bucketed by weight.
/// Returns `(weight, was_cut)` per canonical edge.
pub fn cut_by_weight(g: &CsrGraph, c: &Clustering) -> Vec<(Weight, bool)> {
    g.edges().iter().map(|e| (e.w, c.is_cut(e))).collect()
}

/// Number of distinct clusters intersecting the ball `B(v, r)`
/// (Lemma 2.2's quantity, with the ball centered at a vertex).
pub fn ball_cluster_count(g: &CsrGraph, c: &Clustering, v: VertexId, r: Weight) -> usize {
    let (sssp, _) = dial_sssp_bounded(g, &[(v, 0)], r);
    let mut seen = HashSet::new();
    for (u, &d) in sssp.dist.iter().enumerate() {
        if d != INF {
            seen.insert(c.cluster_id[u]);
        }
    }
    seen.len()
}

/// Ball–cluster counts for a set of sample centers (one decomposition,
/// many balls — the per-vertex expectation of Corollary 3.1).
pub fn ball_cluster_counts(
    g: &CsrGraph,
    c: &Clustering,
    centers: &[VertexId],
    r: Weight,
) -> Vec<usize> {
    centers
        .iter()
        .map(|&v| ball_cluster_count(g, c, v, r))
        .collect()
}

/// Histogram of cluster radii (Lemma 2.1's quantity) as
/// `(max_radius, mean_radius)`.
pub fn radius_summary(c: &Clustering) -> (Weight, f64) {
    let radii = c.radii();
    if radii.is_empty() {
        return (0, 0.0);
    }
    let max = *radii.iter().max().unwrap();
    let mean = radii.iter().sum::<u64>() as f64 / radii.len() as f64;
    (max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterBuilder, Seed};
    use psh_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(g: &CsrGraph, beta: f64, seed: u64) -> Clustering {
        ClusterBuilder::new(beta)
            .seed(Seed(seed))
            .build(g)
            .unwrap()
            .artifact
    }

    #[test]
    fn cut_stats_bounds() {
        let g = generators::grid(12, 12);
        let c = cluster(&g, 0.4, 1);
        let s = cut_stats(&g, &c);
        assert_eq!(s.total, g.m());
        assert!(s.cut <= s.total);
        assert!((0.0..=1.0).contains(&s.fraction));
    }

    #[test]
    fn corollary_2_3_cut_probability_respected_in_aggregate() {
        // Average the cut fraction over many independent clusterings of a
        // unit-weight graph; Corollary 2.3 bounds each edge's cut
        // probability by 1 - exp(-β) ≈ β. Allow generous statistical slack.
        let g = generators::torus(12, 12);
        let beta = 0.2f64;
        let trials = 40;
        let mut frac_sum = 0.0;
        for seed in 0..trials {
            let c = cluster(&g, beta, seed);
            frac_sum += cut_stats(&g, &c).fraction;
        }
        let mean = frac_sum / trials as f64;
        let bound = 1.0 - (-beta).exp();
        assert!(
            mean <= bound * 1.3,
            "mean cut fraction {mean} exceeds Cor 2.3 bound {bound} with slack"
        );
    }

    #[test]
    fn singleton_clustering_cuts_everything() {
        let g = generators::cycle(20);
        let c = cluster(&g, 100.0, 2);
        assert_eq!(c.num_clusters, 20);
        let s = cut_stats(&g, &c);
        assert_eq!(s.cut, g.m());
    }

    #[test]
    fn ball_cluster_count_on_singletons_equals_ball_size() {
        let g = generators::path(9);
        let c = cluster(&g, 100.0, 3);
        // all singletons: a radius-2 ball around the middle touches 5 clusters
        assert_eq!(ball_cluster_count(&g, &c, 4, 2), 5);
    }

    #[test]
    fn ball_cluster_count_on_one_big_cluster_is_one() {
        let g = generators::path(30);
        let c = cluster(&g, 0.001, 12);
        if c.num_clusters == 1 {
            assert_eq!(ball_cluster_count(&g, &c, 15, 5), 1);
        }
    }

    #[test]
    fn cut_by_weight_covers_all_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = generators::grid(8, 8);
        let g = generators::with_uniform_weights(&base, 1, 4, &mut rng);
        let c = ClusterBuilder::new(0.1)
            .build_with_rng(&g, &mut rng)
            .unwrap()
            .0;
        let rows = cut_by_weight(&g, &c);
        assert_eq!(rows.len(), g.m());
    }

    #[test]
    fn radius_summary_consistent() {
        let g = generators::grid(10, 10);
        let c = cluster(&g, 0.3, 5);
        let (max, mean) = radius_summary(&c);
        assert!(mean <= max as f64);
        assert_eq!(max, c.max_radius());
    }
}
